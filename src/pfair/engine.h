/// \file engine.h
/// \brief The PD2 scheduling engine with online reweighting.
///
/// Engine simulates a PD2-scheduled M-processor system slot by slot, applies
/// one of the reweighting schemes (PD2-OI, PD2-LJ, or a hybrid), maintains
/// the three ideal schedules the paper compares against (I_SW, I_CSW, I_PS),
/// and records drift, lag, misses, and a full schedule trace.
///
/// Per-slot processing order at boundary t (each step may enable the next):
///   1. joins due at t start a task's release chain;
///   2. pending reweight enactments whose gate time has arrived fire:
///      scheduling weight switches, a new generation's first subtask is
///      released, drift is sampled (Eqn. (5));
///   3. normal chain releases due at t happen (Eqns. (2)-(4));
///   4. externally queued weight-change initiations and leave requests at t
///      are processed (rules O/I or L/J decide halt/enactment gating);
///   5. ideal per-slot allocations for slot t are accrued (Fig. 5 recursion
///      for I_SW/I_CSW; wt(T, t) for I_PS);
///   6. PD2 dispatches up to M subtasks for slot t (EPDF, b-bit tie-break,
///      then the configurable final tie-break);
///   7. deadline misses at t+1 are detected.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "pfair/fault.h"
#include "pfair/indexed_ready_queue.h"
#include "pfair/priority.h"
#include "pfair/soa/batch_windows.h"
#include "pfair/soa/hot_state.h"
#include "pfair/task.h"
#include "pfair/types.h"
#include "pfair/weight.h"
#include "pfair/windows.h"
#include "rational/rational.h"

namespace pfr::pfair {

/// Static engine configuration.
struct EngineConfig {
  int processors{1};                 ///< M
  ReweightPolicy policy{ReweightPolicy::kOmissionIdeal};
  PolicingMode policing{PolicingMode::kClamp};
  /// kHybridMagnitude: use OI when max(v/w, w/v) >= this ratio, else LJ.
  double hybrid_magnitude_threshold{2.0};
  /// kHybridBudget: at most this many OI initiations per slot; rest use LJ.
  int hybrid_budget_per_slot{1};
  bool record_slot_trace{true};
  /// Run per-slot invariant checks (AF1, (W), window sanity).  What a
  /// failed check does is chosen by `violations` below; the default policy
  /// throws std::logic_error, the strict mode the tests use.
  bool validate{false};
  /// Response to a validate-mode invariant violation: throw (default),
  /// trace-and-continue, or quarantine the implicated task.  The non-throw
  /// policies keep a production system running on corrupted state while the
  /// trace records what happened.
  ViolationPolicy violations{ViolationPolicy::kThrow};
  /// Graceful-overload response when effective capacity (alive processors)
  /// drops below the total task weight: compress all weights, shed tasks,
  /// freeze admissions, or do nothing (see types.h).  Degradation acts
  /// through ordinary reweighting initiations, so drift accounting and the
  /// Theorem 2-5 checks still apply to degraded runs.
  DegradationMode degradation{DegradationMode::kNone};
  /// Admit *static* heavy tasks (1/2 < w <= 1): PD2 then uses the full
  /// three-level tie-break (deadline, b-bit, group deadline).  Reweighting
  /// heavy tasks stays unsupported -- the paper defers those rules to
  /// Block's dissertation -- and such initiations throw.
  bool allow_heavy{false};
  /// How dispatch selects the M highest-priority candidates each slot.
  /// Defaults to the incremental fast path; all modes are bit-identical
  /// (see DispatchMode in types.h).
  DispatchMode dispatch_mode{DispatchMode::kIncremental};
  /// Legacy toggle predating dispatch_mode: when true, forces
  /// DispatchMode::kHeapRebuild regardless of dispatch_mode.
  bool use_ready_queue{false};
  /// Debug oracle: re-derive every candidate's priority fields through the
  /// exact-Rational window formulas (windows.h, namespace oracle) and
  /// recompute the slot's dispatch decision with the reference scan+sort
  /// path, throwing std::logic_error on any divergence from the fast path.
  /// Also honored via the environment variable PFR_VERIFY_PRIORITIES=1
  /// (checked once at Engine construction), which is how CI runs the whole
  /// test suite under the oracle.  Pure observer: never changes a schedule.
  bool verify_priorities{false};
  /// Disable the SoA fast-mode ideal accrual: every task runs the exact
  /// legacy Rational recursion each slot.  The schedules and every Rational
  /// total are bit-identical either way (the hunt asserts this); the toggle
  /// exists for A/B digest runs and bisection.  Also honored via the
  /// environment variable PFR_LEGACY_ACCRUAL=1 (checked at construction).
  bool legacy_accrual{false};
};

/// Per-slot record of which tasks ran.
struct SlotRecord {
  std::vector<TaskId> scheduled;  ///< tasks given the slot, unordered
  int holes{0};                   ///< idle *alive* processors in this slot
  /// Effective capacity M_alive(t) of the slot: processors minus crashed
  /// ones minus quantum overruns.  Equals M on fault-free runs.  The
  /// post-hoc verifier checks "at most capacity subtasks per slot".
  int capacity{0};
};

/// Aggregate counters across the run.
struct EngineStats {
  std::int64_t slots{0};
  std::int64_t dispatched{0};
  std::int64_t holes{0};
  int initiations{0};
  int enactments{0};
  int halts{0};
  /// Tasks whose slot allocation flipped (in or out of the scheduled set)
  /// on a slot where a reweight enactment fired: the per-reweight
  /// disruption the SLO layer tracks.  Symmetric difference of the
  /// previous and current scheduled TaskId sets, counted only on
  /// enactment slots.
  std::int64_t disruptions{0};
  int oi_events{0};      ///< initiations handled by rules O/I
  int lj_events{0};      ///< initiations handled by leave/join
  int clamped_requests{0};
  int rejected_requests{0};
  // --- fault injection & degradation (pfair/fault.h) ---
  int proc_crashes{0};      ///< processor-down faults applied
  int proc_recoveries{0};   ///< processor-up faults applied
  int overruns{0};          ///< quantum-overrun faults applied
  int dropped_requests{0};  ///< queued requests lost to drop faults
  int delayed_requests{0};  ///< queued requests postponed by delay faults
  int degrade_events{0};    ///< times degradation engaged or re-scaled
  int shed_tasks{0};        ///< tasks shed by DegradationMode::kShed
  int quarantines{0};       ///< tasks quarantined by the violation policy
  int violations{0};        ///< validate-mode checks that failed
  // --- incremental-dispatch fast path (DispatchMode::kIncremental) ---
  std::int64_t fastpath_upserts{0};  ///< ready-queue inserts/re-keys
  std::int64_t fastpath_pops{0};     ///< candidates dispatched off the queue
  std::int64_t fastpath_erases{0};   ///< candidates invalidated (halt etc.)
  std::int64_t oracle_checks{0};     ///< verify_priorities slot cross-checks
  /// Released windows whose deadline or group deadline clamped at
  /// kSlotSaturated instead of aborting the run (degraded subtasks).
  std::int64_t fastpath_saturations{0};
  /// Times a task's ideal accrual entered the SoA int64 fast mode (PR 9);
  /// zero under validate / legacy_accrual or when no task is eligible.
  std::int64_t accrual_fast_entries{0};
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg);

  // ----- task-set construction (allowed before and during the run) -----

  /// Adds a task of the given weight joining at `join_time` (>= now).
  /// Throws InvalidWeight unless 0 < weight <= 1/2.
  TaskId add_task(Rational weight, Slot join_time = 0, std::string name = {});

  /// Lower rank = favored when deadline and b-bit both tie (the paper's
  /// figures fix specific tie orders; default rank 0, then lowest TaskId).
  void set_tie_rank(TaskId id, int rank);

  /// IS separation: delays the release of T_j by `delay` slots beyond
  /// d(T_{j-1}) - b(T_{j-1}).  Must be set before T_j is released.
  void add_separation(TaskId id, SubtaskIndex j, Slot delay);

  /// AGIS: declares T_j absent (never scheduled, zero allocations, complete
  /// at its release).  Must be set before T_j is released.
  void mark_absent(TaskId id, SubtaskIndex j);

  // ----- dynamic behavior -----

  /// Queues a weight-change initiation for time `at` (>= now).  The engine's
  /// policy decides the rule; policing may clamp or reject the target.
  void request_weight_change(TaskId id, Rational new_weight, Slot at);

  /// Queues a leave request: the task stops releasing subtasks at `at` and
  /// leaves per rule L once its last released subtask's window closes.
  void request_leave(TaskId id, Slot at);

  /// Applies rule L immediately (before this slot's releases) and returns
  /// the resulting leave time: d(T_j) + b(T_j) of the last released subtask
  /// (or now() if none released yet).  Idempotent -- a task already leaving
  /// keeps its leave time.  This is the cluster Migrator's hook: the source
  /// shard's leave slot must be known *synchronously* so the target shard
  /// can reserve the migrating task's weight with a join at exactly that
  /// slot (rule L + join, Thm. 3 drift accounting).
  Slot leave_now(TaskId id);

  // ----- admission forecasting (src/serve front-end) -----

  /// The weight policing would grant a request for `target` right now:
  /// `target` itself, a clamped value, or 0 (rejection), per cfg_.policing.
  /// Pass id = -1 to size a *new* join (no existing reservation excluded).
  /// Pure forecast: no stats, no trace, no state change.  The actual grant
  /// at processing time is never smaller than this forecast (enactments can
  /// only free capacity between now and then).
  [[nodiscard]] Rational preview_admission(TaskId id, Rational target) const;

  /// Forecast of how a weight-change initiation issued *now* would be
  /// handled: the rule selected and the enactment slot.  `at` is kNever
  /// while the gate (an I_SW completion) is not yet known; it then resolves
  /// within the anchor subtask's window.  For ReweightPolicy::kHybridBudget
  /// pass the number of OI initiations already destined for this slot
  /// (the engine's own per-slot budget counter resets each step).
  struct EnactmentForecast {
    Slot at{kNever};
    RuleApplied rule{RuleApplied::kNone};
  };
  [[nodiscard]] EnactmentForecast predict_enactment(TaskId id,
                                                    const Rational& target,
                                                    int oi_used_hint = 0) const;

  // ----- fault injection (pfair/fault.h) -----

  /// Installs the fault script the run replays.  Every event must name a
  /// valid processor (< M) and lie at or after now().  Replaces any prior
  /// plan; call before the affected slots are simulated.
  void set_fault_plan(FaultPlan plan);

  // ----- execution -----

  void step();                 ///< simulate one slot
  void run_until(Slot horizon);///< simulate slots [now, horizon)
  [[nodiscard]] Slot now() const noexcept { return now_; }

  // ----- observability (src/obs) -----

  /// Attaches a structured-event sink (nullptr detaches).  Pure
  /// observation: the traced schedule is bit-identical to the untraced one
  /// (tests assert this).  Caller keeps ownership; remember to flush() the
  /// sink at end of run.
  void set_event_sink(obs::EventSink* sink) noexcept {
    tracer_.set_sink(sink);
  }
  [[nodiscard]] bool tracing() const noexcept { return tracer_.enabled(); }

  /// Attaches a metrics registry (nullptr detaches): the eight per-slot
  /// phases (faults, joins, enactments, releases, events, ideal accrual,
  /// dispatch, miss detection) are timed into "engine.phase.*" timers from
  /// the next step() on.  Caller keeps ownership.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Mirrors the run's aggregate state (EngineStats, misses, task count)
  /// into "engine.*" counters of `registry`.  Adds to existing values, so
  /// use a fresh registry per run (or per engine when merging).
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Attaches a live telemetry shard (nullptr detaches).  From the next
  /// step() on, the engine publishes its per-slot stat deltas and gauges
  /// into `shard` inside a begin_slot()/end_slot() section, so any thread
  /// can snapshot consistent counters while the run is in flight.  Pure
  /// observer: schedules and digests are bit-identical with telemetry on
  /// or off.  Caller keeps ownership.
  void set_telemetry(obs::TelemetryShard* shard) noexcept {
    telemetry_ = shard;
    tel_prev_ = stats_;
    tel_prev_misses_ = static_cast<std::int64_t>(misses_.size());
  }
  [[nodiscard]] obs::TelemetryShard* telemetry() const noexcept {
    return telemetry_;
  }

  /// Mean |drift vs I_PS| (Eqn. (5)) per admitted task, maintained
  /// incrementally as drift samples land (no O(N) rational scan).
  [[nodiscard]] double mean_abs_drift() const noexcept {
    return tasks_.empty() ? 0.0
                          : drift_abs_sum_ /
                                static_cast<double>(tasks_.size());
  }

  // ----- queries -----

  [[nodiscard]] int processors() const noexcept { return cfg_.processors; }
  /// Processors currently alive (M minus crashed ones, plus/minus any
  /// elastic lending delta).  Policing admits against this capacity, and
  /// degradation engages when the total task weight exceeds it.
  [[nodiscard]] int alive_processors() const noexcept {
    const int alive = cfg_.processors - down_count_ + elastic_delta_;
    return alive < 0 ? 0 : alive;
  }

  // ----- elastic capacity (cluster lending) -----

  /// Sets the elastic capacity delta: processors borrowed from (> 0) or
  /// lent to (< 0) other shards by the cluster's capacity ledger.  Must be
  /// called between steps (the cluster's serial coordinator phase); takes
  /// effect at the next slot through the same per-slot effective-capacity
  /// path faults use, so dispatch, the verify oracle, and the Thm. 2-5
  /// drift accounting apply unchanged.  A change marks the slot as a
  /// capacity event so degradation re-evaluates against the new capacity.
  void set_elastic_delta(int delta) {
    if (cfg_.processors + delta < 0) {
      throw std::invalid_argument{
          "elastic delta would drive capacity below zero"};
    }
    if (delta == elastic_delta_) return;
    elastic_delta_ = delta;
    capacity_event_this_slot_ = true;
    if (delta > borrow_peak_) borrow_peak_ = delta;
  }
  /// Current lending delta (> 0 borrowed, < 0 lent out, 0 neutral).
  [[nodiscard]] int elastic_delta() const noexcept { return elastic_delta_; }
  /// Largest delta ever borrowed; verify_schedule() admits per-slot
  /// capacities up to processors() + borrow_peak().
  [[nodiscard]] int borrow_peak() const noexcept { return borrow_peak_; }
  [[nodiscard]] bool processor_down(int p) const {
    return proc_down_.at(static_cast<std::size_t>(p));
  }
  /// True once any capacity fault (crash or overrun) has been applied; the
  /// verifier uses this to suspend the fault-free-only Theorem 2 check.
  [[nodiscard]] bool capacity_faulted() const noexcept {
    return stats_.proc_crashes > 0 || stats_.overruns > 0;
  }
  /// True while degradation is engaged (weights compressed, admissions
  /// frozen, or capacity still short after shedding).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] bool admissions_frozen() const noexcept {
    return admissions_frozen_;
  }
  /// The current compression factor (1 when not compressing).
  [[nodiscard]] const Rational& degrade_factor() const noexcept {
    return degrade_factor_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] const TaskState& task(TaskId id) const {
    TaskState& t =
        const_cast<Engine*>(this)->tasks_.at(static_cast<std::size_t>(id));
    // Lazily materialize fast-mode accrual so external readers always see
    // exact Rational totals.  Logically const: the flush only folds pending
    // accumulators into the totals they already represent.
    if (hot_.mode()[static_cast<std::size_t>(id)] == soa::AccrualMode::kFast) {
      const_cast<Engine*>(this)->flush_task_accrual(t);
    }
    return t;
  }
  [[nodiscard]] const std::vector<MissRecord>& misses() const noexcept {
    return misses_;
  }
  [[nodiscard]] const std::vector<SlotRecord>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// drift(T, now) per Eqn. (5).
  [[nodiscard]] Rational drift(TaskId id) const { return task(id).drift; }

  /// lag(S, I_CSW, T, now) = A(I_CSW,T,0,now) - A(S,T,0,now).
  [[nodiscard]] Rational lag_icsw(TaskId id) const {
    const TaskState& t = task(id);
    return t.cum_icsw - Rational{t.scheduled_count};
  }

  /// LAG(S, I_CSW, tau, now): sum of lag_icsw over all tasks.
  [[nodiscard]] Rational total_lag_icsw() const;

  /// Sum of current scheduling weights (property (W) left-hand side).
  [[nodiscard]] Rational total_scheduling_weight() const;

 private:
  // engine.cc
  void process_joins(Slot t);
  void process_due_releases(Slot t);
  void release_subtask(TaskState& task, Slot at);
  /// Installs a released subtask from its precomputed windows: freezes the
  /// priority fields (clamping saturated ones), emits the trace, samples
  /// drift on generation firsts, schedules the next release, and refreshes
  /// the task's SoA lanes.  Both the batch release path and the scalar
  /// enactment path funnel through here.
  void finish_release(TaskState& task, Slot at, const SubtaskWindows& w);
  void schedule_next_normal_release(TaskState& task);
  void detect_misses(Slot boundary);
  /// Exact legacy miss scan over every task; run only on boundaries the
  /// deadline ring flags as at-risk (or every slot when the ring overflowed).
  void detect_misses_scan(Slot boundary);
  void validate_slot(Slot t);

  // engine.cc (SoA hot-state maintenance)
  /// Mirrors task.next_release into the SoA lane (kNever when the chain is
  /// gated: not joined, frozen, leaving, quarantined).
  void soa_sync_release_lane(const TaskState& task);
  /// Re-evaluates fast-mode eligibility after `front` released; enters or
  /// stays in fast mode with refreshed lanes, or demotes to slow.
  void soa_after_release(TaskState& task, const Subtask& front);
  /// Flushes pending fast-mode accrual and parks the task in slow mode
  /// (exact legacy accrual from the next slot on).  No-op when not fast.
  void soa_demote(TaskState& task);
  /// Quarantine/leave-completion: flush, then stop accruing entirely.
  void soa_park_idle(TaskState& task);
  /// Folds a fast task's pending int64 accumulators into the Rational
  /// cum_isw/cum_icsw/cum_ips totals and materializes nominal_cum /
  /// nominal_complete_at on its open subtasks through slot now_ - 1.
  /// Idempotent; no-op unless the task is in fast mode.
  void flush_task_accrual(TaskState& task);
  void flush_all_accrual();
  /// Deadline-miss ring bookkeeping: note a present subtask's frozen
  /// deadline at release / settle it at dispatch or halt.
  void miss_note_release(Slot deadline);
  void miss_note_settled(Slot deadline);

  // fault.cc (engine side)
  void process_faults(Slot t);
  void drop_queued_requests(TaskId task, Slot t);
  void delay_queued_requests(TaskId task, Slot t, Slot by);
  void maybe_degrade(Slot t);
  void degrade_compress(const Rational& capacity, const Rational& nominal,
                        Slot t);
  void degrade_shed(const Rational& capacity, Rational nominal, Slot t);
  void degrade_recover(Slot t);
  void quarantine_task(TaskState& task, Slot t, const std::string& reason);
  /// Routes a validate-mode failure through cfg_.violations: throw,
  /// trace-and-continue, or quarantine `task` (nullptr when no single task
  /// is implicated, e.g. property (W)).
  void handle_violation(const std::string& what, TaskState* task, Slot t);

  // ideal.cc
  void accrue_ideal(Slot t);
  void accrue_task_ideal(TaskState& task, Slot t);
  /// Satellite of accrue_ideal: I_PS allocation accrued while slot t lies
  /// inside a declared IS separation gap (release displacement, Thm. 5
  /// scope accounting).  Slow path only -- separated tasks never run fast.
  void accrue_sep_displacement(TaskState& task, Slot t);

  // scheduler.cc
  void dispatch(Slot t);
  [[nodiscard]] const Subtask* eligible_candidate(TaskState& task, Slot t);
  /// Const twin of eligible_candidate: the task's front candidate without
  /// advancing the dispatch cursor (the oracle must not perturb state).
  [[nodiscard]] const Subtask* peek_candidate(const TaskState& task,
                                              Slot t) const;
  /// The dispatch strategy actually in effect (folds the legacy
  /// use_ready_queue toggle into dispatch_mode).
  [[nodiscard]] DispatchMode effective_dispatch_mode() const noexcept {
    return cfg_.use_ready_queue ? DispatchMode::kHeapRebuild
                                : cfg_.dispatch_mode;
  }
  /// The cached integer priority of `s` (all fields frozen at release).
  [[nodiscard]] Pd2Priority cached_priority(const TaskState& task,
                                            const Subtask& s) const noexcept {
    return Pd2Priority{s.deadline, s.b, s.group_deadline, task.tie_rank,
                       task.id};
  }
  /// Incremental mode: re-derives `task`'s front candidate (advancing the
  /// dispatch cursor past complete subtasks) and updates its ready-queue
  /// entry.  Called from every mutation that can change the candidate:
  /// release, rule-O halt, dispatch, quarantine, tie-rank change.  No-op in
  /// the rescanning modes.
  void sync_ready_candidate(TaskState& task);
  /// verify_priorities: cross-checks cached windows and the slot's selected
  /// candidate order against the rational reference.  Must run after
  /// selection but before scheduled_at is committed.
  void verify_dispatch_oracle(Slot t, std::size_t m);

  // reweight.cc
  void sort_queued_events();
  void process_due_events(Slot t);
  void process_pending_enactments(Slot t);
  /// `degradation_induced` requests skip policing (the degradation
  /// controller already solved the global fit) and preserve nominal_wt so
  /// the original weight can be restored on recovery.
  void initiate_weight_change(TaskState& task, Rational target, Slot t,
                              bool degradation_induced = false);
  void initiate_leave(TaskState& task, Slot t);
  void enact(TaskState& task, Rational target, Slot t);
  void apply_rule_oi(TaskState& task, Rational target, Slot t);
  void apply_rule_lj(TaskState& task, Rational target, Slot t);
  [[nodiscard]] bool use_oi_rules(const TaskState& task, const Rational& target,
                                  Slot t);
  /// Side-effect-free twin of use_oi_rules for forecasting; `oi_used` stands
  /// in for the per-slot budget counter under kHybridBudget.
  [[nodiscard]] bool would_use_oi(const TaskState& task, const Rational& target,
                                  int oi_used) const;
  [[nodiscard]] Rational police(const TaskState& task, Rational target);
  void sample_drift(TaskState& task, Slot u);

  // engine.cc (telemetry)
  void count_disruptions(int enactments_before);
  void publish_telemetry();

  EngineConfig cfg_;
  Slot now_{0};
  std::vector<TaskState> tasks_;
  std::vector<MissRecord> misses_;
  std::vector<SlotRecord> trace_;
  EngineStats stats_;

  // --- observability (pure observers; never consulted for scheduling) ---
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_{nullptr};
  obs::TelemetryShard* telemetry_{nullptr};
  /// Stats as of the last telemetry publish; publish_telemetry() emits the
  /// per-slot deltas against this copy.
  EngineStats tel_prev_;
  std::int64_t tel_prev_misses_{0};
  /// Cached total_scheduling_weight() for the kLoad gauge, refreshed every
  /// 64 slots (the exact sum is an O(N) rational scan, too hot for every
  /// slot).
  double tel_load_cache_{0};
  /// Incremental state behind mean_abs_drift(): per-task last |drift|
  /// sample (as double) and their running sum.
  std::vector<double> drift_abs_last_;
  double drift_abs_sum_{0};
  /// Scheduled TaskId sets of the previous and current slot, kept for the
  /// disruption count.  Filled in dispatch lane order; sorted lazily (see
  /// *_scheduled_sorted_ below) since the symmetric difference is only
  /// evaluated on enactment slots.
  std::vector<TaskId> prev_scheduled_;
  std::vector<TaskId> last_scheduled_;
  /// The per-slot pipeline phases, in step() order (timer indices).  The
  /// dispatch phase is additionally split into selection (candidate pick,
  /// the part the fast path accelerates) and commit (bookkeeping + trace
  /// emission), timed as nested sub-phases of kPhaseDispatch.
  enum Phase : int {
    kPhaseFaults = 0,
    kPhaseJoins,
    kPhaseEnactments,
    kPhaseReleases,
    kPhaseEvents,
    kPhaseIdeal,
    kPhaseDispatch,
    kPhaseDispatchSelect,
    kPhaseDispatchCommit,
    kPhaseMissDetect,
    kPhaseCount,
  };
  /// Timers resolved once in set_metrics; null when metrics are detached.
  obs::Timer* phase_timers_[kPhaseCount] = {};

  struct QueuedEvent {
    Slot at;
    TaskId task;
    Rational target;  ///< weight, or unused for leaves
    bool is_leave;
  };
  /// Events queued by request_*; the unprocessed suffix is stably sorted by
  /// time on demand (events_dirty_).
  std::vector<QueuedEvent> event_queue_;
  std::size_t next_event_{0};
  bool events_dirty_{false};

  int oi_budget_used_this_slot_{0};

  // --- fault injection & degradation state (fault.cc) ---
  FaultPlan fault_plan_;
  std::size_t next_fault_{0};
  std::vector<bool> proc_down_;    ///< sized M at construction
  int down_count_{0};
  int overruns_this_slot_{0};
  int slot_capacity_{0};           ///< dispatch capacity of the current slot
  int elastic_delta_{0};           ///< processors borrowed (+) / lent (-)
  int borrow_peak_{0};             ///< max elastic_delta_ ever applied
  bool degraded_{false};
  bool admissions_frozen_{false};
  Rational degrade_factor_{1};
  /// Set by crash/recover faults and by joins/initiations; degradation is
  /// re-evaluated only on slots where one of them fired.
  bool capacity_event_this_slot_{false};
  bool weight_event_this_slot_{false};

  /// Scratch for dispatch(): (task, subtask) candidates.
  struct Candidate {
    TaskId task;
    const Subtask* sub;
  };
  std::vector<Candidate> candidates_;
  /// Scratch heap for the use_ready_queue dispatch mode.
  std::vector<std::pair<Pd2Priority, Candidate>> heap_scratch_;
  /// Incremental dispatch (DispatchMode::kIncremental): one entry per task
  /// whose front candidate is eligible, keyed by its cached Pd2Priority.
  IndexedReadyQueue ready_;
  /// Scratch for the oracle's reference candidate set.
  std::vector<Candidate> oracle_scratch_;

  // --- SoA hot state & allocation-free slot-loop scratch (PR 9) ---
  /// Dense per-task lanes for the per-slot kernels (arena-backed).
  soa::HotState hot_;
  /// Lane indices due to release this slot (scan_due_releases output).
  std::vector<std::int32_t> due_scratch_;
  /// Window jobs/outputs for the batch release kernel.
  std::vector<soa::WindowJob> window_jobs_;
  std::vector<SubtaskWindows> window_outs_;
  /// Joins sorted by (join_time, id); next_join_ is the consumed prefix,
  /// joins_dirty_ marks an unsorted suffix after mid-run add_task.
  std::vector<std::pair<Slot, TaskId>> join_queue_;
  std::size_t next_join_{0};
  bool joins_dirty_{false};
  /// Tasks that may hold a gated PendingReweight (duplicates allowed;
  /// sorted+deduped+compacted each enactment pass).
  std::vector<TaskId> pending_ids_;
  std::vector<TaskId> pending_scratch_;
  /// Deadline-miss ring: bucket counts of unsettled present subtasks per
  /// deadline slot, indexed deadline & (kMissRing-1) and valid for
  /// deadlines within kMissRing of the current boundary.  A release whose
  /// deadline lies beyond the window flips miss_ring_overflow_, after
  /// which detect_misses falls back to the exact per-slot scan for the
  /// rest of the run (far deadlines only arise from pathological weights
  /// or saturated windows).
  static constexpr Slot kMissRing = 32768;
  std::vector<std::int32_t> miss_ring_;
  bool miss_ring_overflow_{false};
  /// Slots since the last flush-all; bounds the int64 pending accumulators
  /// (flushed every kFlushPeriod slots).
  static constexpr Slot kFlushPeriod = 4096;
  /// Sortedness of prev/last_scheduled_ (disruptions are only counted on
  /// enactment slots, so the sort is deferred until needed).
  bool prev_scheduled_sorted_{true};
  bool last_scheduled_sorted_{true};
};

}  // namespace pfr::pfair
