/// \file pfair.h
/// \brief Umbrella header for the PD2 reweighting library.
///
/// Quickstart:
/// \code
///   pfr::pfair::EngineConfig cfg;
///   cfg.processors = 4;
///   cfg.policy = pfr::pfair::ReweightPolicy::kOmissionIdeal;
///   pfr::pfair::Engine eng{cfg};
///   auto a = eng.add_task(pfr::rat(3, 19), 0, "A");
///   eng.request_weight_change(a, pfr::rat(2, 5), 8);
///   eng.run_until(100);
///   // eng.misses().empty(), eng.drift(a), eng.task(a)...
/// \endcode
#pragma once

#include "pfair/analysis.h"        // IWYU pragma: export
#include "pfair/engine.h"          // IWYU pragma: export
#include "pfair/epdf_projected.h"  // IWYU pragma: export
#include "pfair/fault.h"           // IWYU pragma: export
#include "pfair/priority.h"        // IWYU pragma: export
#include "pfair/ready_queue.h"     // IWYU pragma: export
#include "pfair/scenario_io.h"     // IWYU pragma: export
#include "pfair/subtask.h"         // IWYU pragma: export
#include "pfair/theory_checks.h"   // IWYU pragma: export
#include "pfair/timeseries.h"      // IWYU pragma: export
#include "pfair/task.h"            // IWYU pragma: export
#include "pfair/trace.h"           // IWYU pragma: export
#include "pfair/types.h"           // IWYU pragma: export
#include "pfair/verify.h"          // IWYU pragma: export
#include "pfair/weight.h"          // IWYU pragma: export
#include "pfair/windows.h"         // IWYU pragma: export
