/// \file reweight.cc
/// \brief The reweighting rules: O and I (PD2-OI), L and J (PD2-LJ), the
/// between-windows case, hybrid policy selection, and property-(W) policing.
///
/// Terminology (Sec. 3.2 of the paper).  A weight change is *initiated* at a
/// user-chosen time t_c and *enacted* at a rule-determined time t_e.  Let
/// T_j be the last-released subtask of T at t_c.
///   * No T_j, or !joined:            enact immediately.
///   * d(T_j) <= t_c (between):       enact at max(t_c, d(T_j) + b(T_j)).
///   * T_j scheduled before t_c       ("ideal-changeable", rule I):
///       increase: swt switches at t_c; the next subtask is released (and
///                 the generation boundary placed) at D(I_SW,T_j) + b(T_j);
///       decrease: everything happens at D(I_SW,T_j) + b(T_j).
///   * T_j not yet scheduled          ("omission-changeable", rule O):
///       T_j is halted at t_c; enact at
///       max(t_c, D(I_SW,T_{j-1}) + b(T_{j-1})) (immediately if j = 1).
///   * PD2-LJ instead enacts at max(t_c, d(T_j) + b(T_j)) without halting.
/// A new initiation before the pending enactment replaces ("skips") it; by
/// property (C) this never delays the enactment.
#include <algorithm>
#include <stdexcept>

#include "pfair/engine.h"
#include "pfair/windows.h"

namespace pfr::pfair {
namespace {

/// Enactment time of a pending event, or kNever if its gate (an I_SW
/// completion) is not yet known.
Slot gate_time(const TaskState& task, const PendingReweight& p) {
  if (p.gate == PendingReweight::Gate::kFixedTime) return p.fixed_time;
  const Subtask& anchor = task.sub(p.anchor);
  const Slot d_isw = anchor.isw_complete_at();
  if (d_isw == kNever) return kNever;
  return std::max(p.initiated_at, d_isw + anchor.b);
}

void halt_subtask(TaskState& task, Subtask& s, Slot t, EngineStats& stats,
                  const obs::Tracer& tracer) {
  if (s.halted()) return;  // repeat rule-O events keep the original halt time
  s.halted_at = t;
  ++task.halt_count;
  ++stats.halts;
  // I_CSW is clairvoyant: it never allocated to this subtask, so remove the
  // contribution credited while the halt was unknown.  (Absent subtasks were
  // never credited in the first place.)
  if (s.present) task.cum_icsw -= s.nominal_cum;
  if (tracer.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kHalt;
    e.slot = t;
    e.task = task.id;
    e.task_name = task.name;
    e.subtask = s.index;
    tracer.emit(e);
  }
}

/// Emits the kInitiation record once the handling rule is known.
void trace_initiation(const obs::Tracer& tracer, const TaskState& task,
                      RuleApplied rule, const Rational& from,
                      const Rational& to, Slot t) {
  if (!tracer.enabled()) return;
  obs::TraceEvent e;
  e.kind = obs::EventKind::kInitiation;
  e.slot = t;
  e.task = task.id;
  e.task_name = task.name;
  e.rule = rule;
  e.weight_from = from;
  e.weight_to = to;
  tracer.emit(e);
}

}  // namespace

void Engine::sort_queued_events() {
  if (!events_dirty_) return;
  std::stable_sort(
      event_queue_.begin() + static_cast<std::ptrdiff_t>(next_event_),
      event_queue_.end(),
      [](const QueuedEvent& a, const QueuedEvent& b) { return a.at < b.at; });
  events_dirty_ = false;
}

void Engine::process_due_events(Slot t) {
  sort_queued_events();
  while (next_event_ < event_queue_.size() &&
         event_queue_[next_event_].at == t) {
    const QueuedEvent& ev = event_queue_[next_event_++];
    TaskState& task = tasks_.at(static_cast<std::size_t>(ev.task));
    if (ev.is_leave) {
      initiate_leave(task, t);
    } else {
      initiate_weight_change(task, ev.target, t);
    }
  }
}

void Engine::process_pending_enactments(Slot t) {
  // Only tasks registered at initiation can hold a gated pending; visiting
  // them in sorted id order reproduces the legacy full-scan's enactment
  // (and trace) order exactly.
  if (pending_ids_.empty()) return;
  std::sort(pending_ids_.begin(), pending_ids_.end());
  pending_ids_.erase(std::unique(pending_ids_.begin(), pending_ids_.end()),
                     pending_ids_.end());
  pending_scratch_.clear();
  for (const TaskId id : pending_ids_) {
    TaskState& task = tasks_[static_cast<std::size_t>(id)];
    if (!task.pending) continue;  // enacted immediately, superseded, or left
    const Slot te = gate_time(task, *task.pending);
    if (te <= t) enact(task, task.pending->target, t);
    if (task.pending) pending_scratch_.push_back(id);  // still gated
  }
  std::swap(pending_ids_, pending_scratch_);
}

void Engine::initiate_weight_change(TaskState& task, Rational target, Slot t,
                                    bool degradation_induced) {
  if (task.leave_requested_at <= t || task.left_at <= t) return;
  if (task.quarantined()) return;
  if (task.swt > kMaxWeight) {
    // The paper's reweighting rules cover light tasks only; heavy-task
    // reweighting needs the cascade-correction machinery it defers.
    throw std::logic_error("reweighting a heavy task is not supported");
  }

  if (!degradation_induced) {
    if (admissions_frozen_ && target > task.swt) {
      // DegradationMode::kFreeze: no new load while capacity is short.
      ++stats_.rejected_requests;
      if (tracer_.enabled()) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kPolicingReject;
        e.slot = t;
        e.task = task.id;
        e.task_name = task.name;
        e.weight_from = target;
        tracer_.emit(e);
      }
      return;
    }
    target = police(task, target);
    if (target.is_zero()) return;  // rejected by admission control
    // Record the user's intent: degradation compresses relative to this and
    // restores to it when capacity recovers.
    task.nominal_wt = target;
    weight_event_this_slot_ = true;
  }

  if (!task.joined || task.subtasks.empty()) {
    // Nothing released yet: the change is enacted immediately; the first
    // subtask (still pending at join/next_release) will use the new weight.
    trace_initiation(tracer_, task, RuleApplied::kNone, task.swt, target, t);
    task.wt = target;
    task.swt = target;
    task.swt_history.emplace_back(std::max(t, task.join_time), target);
    ++task.initiation_count;
    ++task.enactment_count;
    ++stats_.initiations;
    ++stats_.enactments;
    if (tracer_.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kEnactment;
      e.slot = t;
      e.task = task.id;
      e.task_name = task.name;
      e.rule = RuleApplied::kNone;
      e.weight_to = target;
      tracer_.emit(e);
    }
    return;
  }

  if (target == task.wt && !task.pending && target == task.swt) {
    return;  // true no-op
  }

  // The fast accumulators carry the pre-initiation weights; flush them and
  // run the exact recursion across the reweighting boundary (the next
  // generation's first release re-evaluates fast eligibility).
  soa_demote(task);

  task.wt = target;  // the *actual* weight (I_PS) changes at initiation
  ++task.initiation_count;
  ++task.initiations_since_enactment;
  ++stats_.initiations;
  task.pending.reset();  // a newer initiation skips the pending event

  const Subtask& tj = *task.last_released();
  PendingReweight p;
  p.target = target;
  p.initiated_at = t;

  if (tj.deadline <= t) {
    // Between windows: T "left" when T_j's window closed; rejoin now.
    p.rule = RuleApplied::kBetween;
    p.gate = PendingReweight::Gate::kFixedTime;
    p.fixed_time = std::max(t, tj.deadline + tj.b);
    trace_initiation(tracer_, task, p.rule, task.swt, target, t);
    task.pending = p;
    task.chain_frozen = true;
    pending_ids_.push_back(task.id);
    soa_sync_release_lane(task);
    if (p.fixed_time <= t) enact(task, target, t);
    return;
  }

  // r(T_j) <= t < d(T_j): omission- or ideal-changeable (property (RW)).
  if (use_oi_rules(task, target, t)) {
    ++stats_.oi_events;
    apply_rule_oi(task, target, t);
  } else {
    ++stats_.lj_events;
    apply_rule_lj(task, target, t);
  }
}

void Engine::apply_rule_oi(TaskState& task, Rational target, Slot t) {
  Subtask& tj = *task.last_released();
  const Rational swt_before = task.swt;
  PendingReweight p;
  p.target = target;
  p.initiated_at = t;

  const bool scheduled_before_tc = tj.scheduled();  // scheduled_at < t always
  if (!scheduled_before_tc) {
    // Rule O: halt T_j; enact at max(t_c, D(I_SW, T_{j-1}) + b(T_{j-1})),
    // or immediately when T_j is the task's first subtask.
    p.rule = RuleApplied::kRuleO;
    const bool settles_miss_entry = tj.present && !tj.halted();
    halt_subtask(task, tj, t, stats_, tracer_);
    if (settles_miss_entry) miss_note_settled(tj.deadline);
    // The halted subtask was the task's front candidate; drop or replace
    // its ready-queue entry before this slot's dispatch runs.
    sync_ready_candidate(task);
    if (tj.index == 1) {
      p.gate = PendingReweight::Gate::kFixedTime;
      p.fixed_time = t;
    } else {
      p.gate = PendingReweight::Gate::kAnchorIdealComplete;
      p.anchor = tj.index - 1;
    }
  } else if (target > task.swt) {
    // Rule I(i): increasing -- enact (switch swt) immediately, which speeds
    // up T_j's remaining I_SW accrual; release the next subtask at
    // D(I_SW, T_j) + b(T_j).
    p.rule = RuleApplied::kRuleIIncrease;
    p.gate = PendingReweight::Gate::kAnchorIdealComplete;
    p.anchor = tj.index;
    p.swt_enacted_early = true;
    task.swt = target;
    task.swt_history.emplace_back(t, target);
  } else {
    // Rule I(ii): decreasing -- enact at D(I_SW, T_j) + b(T_j).
    p.rule = RuleApplied::kRuleIDecrease;
    p.gate = PendingReweight::Gate::kAnchorIdealComplete;
    p.anchor = tj.index;
  }

  trace_initiation(tracer_, task, p.rule, swt_before, target, t);
  task.rule_counts[static_cast<int>(p.rule)]++;
  task.pending = p;
  task.chain_frozen = true;
  pending_ids_.push_back(task.id);
  soa_sync_release_lane(task);
  const Slot te = gate_time(task, *task.pending);
  if (te != kNever && te <= t) enact(task, target, t);
}

void Engine::apply_rule_lj(TaskState& task, Rational target, Slot t) {
  const Subtask& tj = *task.last_released();
  PendingReweight p;
  p.target = target;
  p.initiated_at = t;
  p.rule = RuleApplied::kLeaveJoin;
  // Rule L: T may leave once t >= d(T_j) + b(T_j) for its last (eventually
  // scheduled) subtask; it rejoins with the new weight immediately (rule J;
  // admission was reserved at initiation by police()).
  p.gate = PendingReweight::Gate::kFixedTime;
  p.fixed_time = std::max(t, tj.deadline + tj.b);
  trace_initiation(tracer_, task, p.rule, task.swt, target, t);
  task.rule_counts[static_cast<int>(p.rule)]++;
  task.pending = p;
  task.chain_frozen = true;
  pending_ids_.push_back(task.id);
  soa_sync_release_lane(task);
  if (p.fixed_time <= t) enact(task, target, t);
}

void Engine::enact(TaskState& task, Rational target, Slot t) {
  const PendingReweight p = *task.pending;
  task.pending.reset();
  task.chain_frozen = false;
  if (!p.swt_enacted_early) {
    task.swt = target;
    task.swt_history.emplace_back(t, target);
  }
  ++task.enactment_count;
  ++stats_.enactments;
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kEnactment;
    e.slot = t;
    e.task = task.id;
    e.task_name = task.name;
    e.rule = p.rule;
    e.weight_to = target;
    tracer_.emit(e);
  }

  // The next subtask starts a new generation: releases/deadlines/b-bits
  // restart as though a task of the new weight joined now (Id = j+1), and
  // drift is sampled at this release (Eqn. (5)) -- see release_subtask().
  task.gen_base = static_cast<SubtaskIndex>(task.subtasks.size());
  release_subtask(task, t);
}

Slot Engine::leave_now(TaskId id) {
  TaskState& task = tasks_.at(static_cast<std::size_t>(id));
  initiate_leave(task, now_);
  return task.left_at;
}

void Engine::initiate_leave(TaskState& task, Slot t) {
  if (task.leave_requested_at != kNever) return;
  task.leave_requested_at = t;
  weight_event_this_slot_ = true;  // freed capacity may end degradation
  task.pending.reset();
  task.chain_frozen = true;
  const Subtask* tj = task.last_released();
  // Rule L: the leave takes effect at d(T_j) + b(T_j) of the last released
  // subtask (which is scheduled by then), or immediately if none.
  task.left_at = tj == nullptr ? t : std::max(t, tj->deadline + tj->b);
  // SoA: the chain ends here, so no successor release-slot allocation will
  // ever pair with the final window's completion top-up.  The kernel's
  // swt-per-covered-slot tiling is only exact *inside* an unbroken chain;
  // hand the window tail back to the exact Fig. 5 recursion.
  soa_demote(task);
  soa_sync_release_lane(task);
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kLeaveRequest;
    e.slot = t;
    e.task = task.id;
    e.task_name = task.name;
    e.when = task.left_at;
    tracer_.emit(e);
  }
}

bool Engine::would_use_oi(const TaskState& task, const Rational& target,
                          int oi_used) const {
  switch (cfg_.policy) {
    case ReweightPolicy::kOmissionIdeal:
      return true;
    case ReweightPolicy::kLeaveJoin:
      return false;
    case ReweightPolicy::kHybridMagnitude: {
      const double ratio = target > task.swt
                               ? (target / task.swt).to_double()
                               : (task.swt / target).to_double();
      return ratio >= cfg_.hybrid_magnitude_threshold;
    }
    case ReweightPolicy::kHybridBudget:
      return oi_used < cfg_.hybrid_budget_per_slot;
  }
  return true;
}

Rational Engine::preview_admission(TaskId id, Rational target) const {
  if (cfg_.policing == PolicingMode::kOff) return target;
  const TaskState* self =
      id >= 0 ? &tasks_.at(static_cast<std::size_t>(id)) : nullptr;
  if (self != nullptr && target <= self->reserved_weight()) return target;
  Rational others;
  for (const TaskState& u : tasks_) {
    if (self != nullptr && u.id == id) continue;
    if (u.left_at <= now_) continue;
    if (u.quarantined()) continue;
    others += u.reserved_weight();
  }
  const Rational avail = Rational{alive_processors()} - others;
  if (target <= avail) return target;
  if (cfg_.policing == PolicingMode::kReject) return Rational{};
  Rational clamped = min(target, avail);
  clamped = min(clamped, kMaxWeight);
  return clamped <= 0 ? Rational{} : clamped;
}

Engine::EnactmentForecast Engine::predict_enactment(TaskId id,
                                                    const Rational& target,
                                                    int oi_used_hint) const {
  TaskState& task =
      const_cast<Engine*>(this)->tasks_.at(static_cast<std::size_t>(id));
  // The forecast reads I_SW completion gates; materialize fast-mode state
  // first (logically const, see Engine::task).
  const_cast<Engine*>(this)->flush_task_accrual(task);
  EnactmentForecast f;
  if (!task.joined || task.subtasks.empty()) {
    // Nothing released yet: initiate_weight_change enacts immediately.
    f.rule = RuleApplied::kNone;
    f.at = std::max(now_, task.join_time);
    return f;
  }
  const Subtask& tj = *task.last_released();
  if (tj.deadline <= now_) {
    f.rule = RuleApplied::kBetween;
    f.at = std::max(now_, tj.deadline + tj.b);
    return f;
  }
  if (!would_use_oi(task, target, oi_used_hint)) {
    f.rule = RuleApplied::kLeaveJoin;
    f.at = std::max(now_, tj.deadline + tj.b);
    return f;
  }
  if (!tj.scheduled()) {
    f.rule = RuleApplied::kRuleO;
    if (tj.index == 1) {
      f.at = now_;
    } else {
      const Subtask& anchor = task.sub(tj.index - 1);
      const Slot d_isw = anchor.isw_complete_at();
      f.at = d_isw == kNever ? kNever : std::max(now_, d_isw + anchor.b);
    }
    return f;
  }
  f.rule = target > task.swt ? RuleApplied::kRuleIIncrease
                             : RuleApplied::kRuleIDecrease;
  const Slot d_isw = tj.isw_complete_at();
  f.at = d_isw == kNever ? kNever : std::max(now_, d_isw + tj.b);
  return f;
}

bool Engine::use_oi_rules(const TaskState& task, const Rational& target,
                          Slot /*t*/) {
  switch (cfg_.policy) {
    case ReweightPolicy::kOmissionIdeal:
      return true;
    case ReweightPolicy::kLeaveJoin:
      return false;
    case ReweightPolicy::kHybridMagnitude: {
      const double ratio = target > task.swt
                               ? (target / task.swt).to_double()
                               : (task.swt / target).to_double();
      return ratio >= cfg_.hybrid_magnitude_threshold;
    }
    case ReweightPolicy::kHybridBudget: {
      if (oi_budget_used_this_slot_ < cfg_.hybrid_budget_per_slot) {
        ++oi_budget_used_this_slot_;
        return true;
      }
      return false;
    }
  }
  return true;
}

Rational Engine::police(const TaskState& task, Rational target) {
  if (cfg_.policing == PolicingMode::kOff) return target;
  if (target <= task.reserved_weight()) return target;  // never adds load
  Rational others;
  for (const TaskState& u : tasks_) {
    if (u.id == task.id) continue;
    if (u.left_at <= now_) continue;
    if (u.quarantined()) continue;  // excused from the schedule entirely
    others += u.reserved_weight();
  }
  // Admission is against the *alive* capacity: after a crash, requests are
  // policed into what the surviving processors can serve.  Equals M on
  // fault-free runs.
  const Rational avail = Rational{alive_processors()} - others;
  if (target <= avail) return target;
  const auto trace_policing = [this, &task](obs::EventKind kind,
                                            const Rational& requested,
                                            const Rational& granted) {
    if (!tracer_.enabled()) return;
    obs::TraceEvent e;
    e.kind = kind;
    e.slot = now_;
    e.task = task.id;
    e.task_name = task.name;
    e.weight_from = requested;
    e.weight_to = granted;
    tracer_.emit(e);
  };
  if (cfg_.policing == PolicingMode::kReject) {
    ++stats_.rejected_requests;
    trace_policing(obs::EventKind::kPolicingReject, target, Rational{});
    return Rational{};  // signals rejection
  }
  ++stats_.clamped_requests;
  Rational clamped = min(target, avail);
  clamped = min(clamped, kMaxWeight);
  // avail is a capacity quotient; keep its denominator on the bounded grid
  // (rounding down never grants more than the exact clamp would).
  clamped = quantize_weight_down(clamped);
  if (clamped <= 0) {
    ++stats_.rejected_requests;
    trace_policing(obs::EventKind::kPolicingReject, target, Rational{});
    return Rational{};
  }
  trace_policing(obs::EventKind::kPolicingClamp, target, clamped);
  return clamped;
}

}  // namespace pfr::pfair
