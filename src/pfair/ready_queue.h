/// \file ready_queue.h
/// \brief Binary-heap ready queue ordered by PD2 priority.
///
/// The engine's per-slot dispatch scans its (small) task table, which is
/// simplest and fast enough for simulation studies.  A production scheduler
/// serving the paper's complexity claims -- O(M log N) per slot, O(log N)
/// per reweight -- needs a priority queue; this is that structure, kept
/// separate so it can be unit-tested and micro-benchmarked on its own
/// (bench/overhead_micro.cc compares it against the scan).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "pfair/priority.h"

namespace pfr::pfair {

/// Max-priority binary heap of (Pd2Priority, payload) pairs.
/// Not stable beyond the total order -- Pd2Priority already totals via
/// (rank, task id), so equal keys cannot occur for distinct tasks.
template <typename Payload>
class ReadyQueue {
 public:
  void clear() noexcept { heap_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  void push(const Pd2Priority& priority, Payload payload) {
    heap_.emplace_back(priority, std::move(payload));
    sift_up(heap_.size() - 1);
  }

  /// Highest-priority entry; undefined when empty.
  [[nodiscard]] const std::pair<Pd2Priority, Payload>& top() const {
    return heap_.front();
  }

  /// Removes and returns the highest-priority payload.
  Payload pop() {
    Payload out = std::move(heap_.front().second);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  /// Heapifies `items` in O(n) (bulk rebuild, as done once per slot).
  void assign(std::vector<std::pair<Pd2Priority, Payload>> items) {
    heap_ = std::move(items);
    if (heap_.size() < 2) return;
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].first.higher_than(heap_[parent].first)) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      std::size_t best = i;
      if (left < heap_.size() &&
          heap_[left].first.higher_than(heap_[best].first)) {
        best = left;
      }
      if (right < heap_.size() &&
          heap_[right].first.higher_than(heap_[best].first)) {
        best = right;
      }
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<std::pair<Pd2Priority, Payload>> heap_;
};

}  // namespace pfr::pfair
