/// \file scenario_io.h
/// \brief Text scenario format: describe a task system, its reweighting
/// events, and an optional fault script in a small line-oriented language,
/// then build an Engine from it.
///
/// Grammar (one directive per line, '#' comments, blank lines ignored):
///
///   processors 4
///   policy oi | lj | hybrid-mag:<ratio> | hybrid-budget:<n>
///   policing clamp | reject | off
///   heavy on | off
///   validate on | off
///   violations throw | trace | quarantine
///   degradation none | compress | shed | freeze
///   task <name> <num>/<den> [join=<t>] [rank=<r>]
///   separation <name> <subtask-index> <delay>
///   absent <name> <subtask-index>
///   reweight <name> <num>/<den> at=<t>
///   leave <name> at=<t>
///   fault crash <cpu> at=<t> [shard=<k>]
///   fault recover <cpu> at=<t> [shard=<k>]
///   fault overrun <cpu> at=<t> [shard=<k>]
///   fault drop <name> at=<t>
///   fault delay <name> at=<t> by=<slots>
///   horizon <slots>
///   shard <processors>                # repeatable; k-th line = shard k
///   shard <k> procs <M> speed <S>     # heterogeneous form; k = next index
///   placement first-fit | worst-fit | wwta
///   migrate <name> <to-shard> at=<t>
///   rebalance period=<n> threshold=<num>/<den> [max-moves=<n>]
///   elastic period=<n> lease=<n> [max-units=<n>] [migrate=on|off]
///
/// The `shard`/`placement`/`migrate`/`rebalance`/`elastic` directives
/// describe a sharded cluster (src/cluster).  The extended shard form
/// declares a heterogeneous shard: M processors each running at integer
/// speed factor S, i.e. M*S capacity units; its `<k>` must name the next
/// undeclared shard index, which keeps scenario text self-checking.  The
/// `elastic` directive enables the capacity-lending control plane
/// (src/cluster/elastic) with the given control period and loan lease.  They parse into plain ScenarioSpec
/// fields here -- pfair does not depend on the cluster layer -- and
/// cluster::build_cluster_scenario() turns the spec into a running
/// Cluster.  build_scenario() (single engine) ignores them.  In a sharded
/// scenario every processor fault must carry `shard=<k>` (a bare cpu index
/// is ambiguous across shards); drop/delay faults name a task and are
/// installed on whichever shard placement chose for it.
///
/// Malformed directives throw ParseError, which carries the file name, the
/// 1-based line and column, and the offending token; what() renders them as
/// "file:line:col: message (at 'token')".  *Unknown* directives are not
/// errors: they are skipped and reported in ScenarioSpec::warnings, so a
/// scenario written for a newer engine still runs on an older one.
///
/// Example (the paper's Fig. 4):
///
///   processors 1
///   task T 2/5 rank=0
///   task U 2/5 rank=1
///   reweight U 1/2 at=3
///   horizon 10
///
/// Example (overload degradation: one of two processors crashes at t=8 and
/// recovers at t=40; in between the four half-weight tasks are compressed
/// onto the surviving processor):
///
///   processors 2
///   degradation compress
///   task A 1/2
///   task B 1/2
///   task C 1/2
///   task D 1/2
///   fault crash 1 at=8
///   fault recover 1 at=40
///   horizon 64
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pfair/engine.h"

namespace pfr::pfair {

/// A malformed scenario directive.  Derives std::invalid_argument so
/// pre-existing catch sites keep working; the typed accessors let tools
/// point an editor at the exact spot.
class ParseError : public std::invalid_argument {
 public:
  ParseError(std::string file, int line, int column, std::string token,
             std::string message);

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }        ///< 1-based
  [[nodiscard]] int column() const noexcept { return column_; }    ///< 1-based
  /// The offending token (may be empty, e.g. for missing-argument errors).
  [[nodiscard]] const std::string& token() const noexcept { return token_; }
  /// The bare message, without the location prefix what() carries.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  std::string file_;
  int line_;
  int column_;
  std::string token_;
  std::string message_;
};

/// Parsed scenario: engine configuration plus the construction script.
struct ScenarioSpec {
  EngineConfig config;
  Slot horizon{100};

  struct TaskSpec {
    std::string name;
    Rational weight;
    Slot join{0};
    int rank{0};
    std::vector<std::pair<SubtaskIndex, Slot>> separations;
    std::vector<SubtaskIndex> absences;
  };
  struct EventSpec {
    std::string task;
    Rational weight;  ///< unused for leaves
    Slot at{0};
    bool is_leave{false};
  };
  /// One `fault` directive; task names resolve to ids in build_scenario.
  struct FaultSpec {
    FaultKind kind{FaultKind::kProcCrash};
    Slot at{0};
    int processor{-1};  ///< crash/recover/overrun
    std::string task;   ///< drop/delay
    Slot delay{0};      ///< delay only
    /// Target shard for processor faults in a sharded scenario (-1 = the
    /// single engine).  build_cluster_scenario requires it; build_scenario
    /// accepts -1 or 0 and rejects anything else.
    int shard{-1};
  };
  // --- sharded cluster extensions (consumed by src/cluster/scenario.h;
  //     ignored by build_scenario) ---
  /// One entry per `shard` directive: shard k's processor count.  Empty
  /// means the scenario is a plain single-engine one.
  std::vector<int> shard_processors;
  /// Integer speed factor per shard, parallel to `shard_processors`
  /// (empty = every shard at speed 1).  A shard with M processors at
  /// speed S contributes M*S capacity units.
  std::vector<int> shard_speeds;
  /// The `placement` keyword verbatim ("" = the cluster default).
  std::string placement;
  struct MigrateSpec {
    std::string task;
    int to_shard{0};
    Slot at{0};
  };
  std::vector<MigrateSpec> migrations;
  struct RebalanceSpec {
    bool enabled{false};
    Slot period{64};
    Rational threshold{1, 4};
    int max_moves{4};
  };
  RebalanceSpec rebalance;
  /// One `elastic` directive: the capacity-lending control plane.  Kept
  /// as plain fields here (like RebalanceSpec) so pfair stays independent
  /// of the cluster layer; build_cluster_scenario maps it onto
  /// cluster::ElasticConfig.
  struct ElasticSpec {
    bool enabled{false};
    Slot period{16};
    Slot lease{64};
    int max_units{8};
    bool allow_migration{true};
  };
  ElasticSpec elastic;

  std::vector<TaskSpec> tasks;
  std::vector<EventSpec> events;
  std::vector<FaultSpec> faults;
  /// Unknown directives skipped during parsing, one "file:line: ..." note
  /// each.  Empty on fully understood input.
  std::vector<std::string> warnings;
};

/// Parses the scenario language.  Throws ParseError on malformed input;
/// `filename` only labels diagnostics.  Unknown directives never throw --
/// they are skipped and noted in ScenarioSpec::warnings.
[[nodiscard]] ScenarioSpec parse_scenario(std::istream& in,
                                          std::string filename = "<scenario>");
[[nodiscard]] ScenarioSpec parse_scenario_string(
    const std::string& text, std::string filename = "<scenario>");

/// Serializes a spec back to canonical scenario text: every grammar
/// directive the spec carries, one per line, in a fixed order (config,
/// shards, tasks, events, faults, migrations, horizon).  The output
/// re-parses to an equivalent spec, and render(parse(render(s))) ==
/// render(s) -- the canonical form is a fixed point, which the chaos
/// harness relies on for replayable `.scn` artifacts and shrinker
/// idempotence.  Config fields outside the grammar (dispatch mode, the
/// priority oracle) are intentionally not represented.
[[nodiscard]] std::string render_scenario(const ScenarioSpec& spec);

/// Builds an engine from a spec (tasks added, events queued, fault plan
/// installed).  The returned map resolves scenario task names to engine ids.
struct BuiltScenario {
  std::unique_ptr<Engine> engine;
  std::map<std::string, TaskId> ids;
  Slot horizon{0};
};
[[nodiscard]] BuiltScenario build_scenario(const ScenarioSpec& spec);

}  // namespace pfr::pfair
