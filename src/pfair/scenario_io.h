/// \file scenario_io.h
/// \brief Text scenario format: describe a task system and its reweighting
/// events in a small line-oriented language, then build an Engine from it.
///
/// Grammar (one directive per line, '#' comments, blank lines ignored):
///
///   processors 4
///   policy oi | lj | hybrid-mag:<ratio> | hybrid-budget:<n>
///   policing clamp | reject | off
///   heavy on | off
///   task <name> <num>/<den> [join=<t>] [rank=<r>]
///   separation <name> <subtask-index> <delay>
///   absent <name> <subtask-index>
///   reweight <name> <num>/<den> at=<t>
///   leave <name> at=<t>
///   horizon <slots>
///
/// Example (the paper's Fig. 4):
///
///   processors 1
///   task T 2/5 rank=0
///   task U 2/5 rank=1
///   reweight U 1/2 at=3
///   horizon 10
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pfair/engine.h"

namespace pfr::pfair {

/// Parsed scenario: engine configuration plus the construction script.
struct ScenarioSpec {
  EngineConfig config;
  Slot horizon{100};

  struct TaskSpec {
    std::string name;
    Rational weight;
    Slot join{0};
    int rank{0};
    std::vector<std::pair<SubtaskIndex, Slot>> separations;
    std::vector<SubtaskIndex> absences;
  };
  struct EventSpec {
    std::string task;
    Rational weight;  ///< unused for leaves
    Slot at{0};
    bool is_leave{false};
  };
  std::vector<TaskSpec> tasks;
  std::vector<EventSpec> events;
};

/// Parses the scenario language.  Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] ScenarioSpec parse_scenario(std::istream& in);
[[nodiscard]] ScenarioSpec parse_scenario_string(const std::string& text);

/// Builds an engine from a spec (tasks added, events queued).  The returned
/// map resolves scenario task names to engine ids.
struct BuiltScenario {
  std::unique_ptr<Engine> engine;
  std::map<std::string, TaskId> ids;
  Slot horizon{0};
};
[[nodiscard]] BuiltScenario build_scenario(const ScenarioSpec& spec);

}  // namespace pfr::pfair
