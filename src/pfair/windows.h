/// \file windows.h
/// \brief Pfair window arithmetic: pseudo-releases, pseudo-deadlines, b-bits.
///
/// For a (sub)task stream of weight w, the i-th subtask of a periodic task
/// has r(T_i) = floor((i-1)/w), d(T_i) = ceil(i/w) and b-bit
/// b(T_i) = ceil(i/w) - floor(i/w) (Sec. 2 of the paper).  The adaptable
/// (AIS) generalization, Eqns. (2)-(4), evaluates the same expressions with
/// the *local* index q = j - z inside the current generation (z = Id(T_j)-1)
/// and the task's *scheduling weight* at the release of T_j.  These helpers
/// are pure functions of (q, w); generation/offset bookkeeping lives in
/// task.h.
#pragma once

#include <cstdint>

#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::pfair {

/// Saturation horizon for window arithmetic.  A window offset whose true
/// value is >= this is clamped to exactly this sentinel and the subtask is
/// flagged `degraded`: its frozen priority still orders deterministically
/// (a saturated deadline loses to every live one, ties fall through b /
/// group deadline / tie rank), but the exact slot is no longer represented.
/// 2^59 is ~5.8e17 slots -- far beyond any simulable horizon -- while
/// staying clear of kNever (2^61 - 1) and leaving headroom so
/// release + clamped-length never overflows int64.
inline constexpr Slot kSlotSaturated = Slot{1} << 59;

/// Iteration cap for the heavy-task group-deadline cascade.  The cascade
/// provably terminates within `den` steps, so any weight on a sane grid
/// (lcm(1..16) = 720720) finishes long before this; weights with larger
/// denominators saturate instead of spinning.  Shared verbatim with the
/// oracle twins so fast path and oracle reach the same verdict.
inline constexpr SubtaskIndex kGroupCascadeCap = SubtaskIndex{1} << 21;

/// floor((q-1)/w): release offset of the q-th subtask (q >= 1) of a stream
/// of weight w, relative to the stream's start.
[[nodiscard]] inline Slot release_offset(SubtaskIndex q, const Rational& w) {
  return floor_div(q - 1, w);
}

/// ceil(q/w): deadline offset of the q-th subtask relative to the stream's
/// start.
[[nodiscard]] inline Slot deadline_offset(SubtaskIndex q, const Rational& w) {
  return ceil_div(q, w);
}

/// b-bit of the q-th subtask: ceil(q/w) - floor(q/w); 1 iff the window of
/// subtask q overlaps the window of subtask q+1 (Eqn. (3)).
[[nodiscard]] inline int b_bit(SubtaskIndex q, const Rational& w) {
  return static_cast<int>(ceil_div(q, w) - floor_div(q, w));
}

/// Window length of the q-th subtask: ceil(q/w) - floor((q-1)/w).
/// For w <= 1/2 this is always >= 2, and >= 3 whenever the b-bit is 1
/// (facts used throughout the correctness proof).
[[nodiscard]] inline Slot window_length(SubtaskIndex q, const Rational& w) {
  return deadline_offset(q, w) - release_offset(q, w);
}

/// Group deadline offset of the q-th subtask of a stream of weight w,
/// relative to the stream's start (the third PD2 tie-break, needed only for
/// heavy tasks: w > 1/2).  Definition (Anderson & Srinivasan): the earliest
/// time t >= d(T_q) such that t = d(T_j) with b(T_j) = 0, or t = d(T_j) - 1
/// with |w(T_j)| = 3, for some j >= q -- the end of the cascade of
/// length-two windows that a late scheduling of T_q could trigger.  Light
/// tasks have no cascade; 0 is returned for them.
[[nodiscard]] inline Slot group_deadline_offset(SubtaskIndex q,
                                                const Rational& w) {
  if (w <= Rational{1, 2}) return 0;
  for (SubtaskIndex j = q;; ++j) {
    if (j > q && window_length(j, w) >= 3) return deadline_offset(j, w) - 1;
    if (b_bit(j, w) == 0) return deadline_offset(j, w);
  }
}

/// Deadline of subtask T_j given its release and Eqn. (2):
/// d = r + ceil(q/w) - floor((q-1)/w), where q = j - z is the local index
/// within the generation and w the scheduling weight at the release.
[[nodiscard]] inline Slot deadline_from_release(Slot release, SubtaskIndex q,
                                                const Rational& w) {
  return release + window_length(q, w);
}

/// All window quantities of one subtask, evaluated together with saturating
/// 128-bit arithmetic.  This is the release-path entry point since PR 9:
/// unlike floor_div/ceil_div above (which throw RationalOverflow when a
/// result leaves int64, killing the run mid-slot), every field here clamps
/// at kSlotSaturated and sets `saturated` instead, so the engine can keep
/// scheduling with a deterministic sentinel priority.
struct SubtaskWindows {
  Slot release_offset{0};   ///< floor((q-1)/w), clamped
  Slot deadline_offset{0};  ///< ceil(q/w), clamped
  int b{0};                 ///< exact even when offsets saturate
  /// Numerator (over w.den()) of the nominal I_SW allocation the subtask
  /// receives in its release slot: (release_offset+1)*num - (q-1)*den.
  /// Derived from the fluid schedule, so it equals `num` for generation
  /// firsts and after a b=0 predecessor.  Meaningless when saturated.
  std::int64_t first_alloc_num{0};
  bool saturated{false};
};

/// Evaluates release/deadline/b/first-alloc for subtask q of weight num/den
/// (0 < num <= den).  Pure integer math on the same frozen formulas as the
/// fast-path helpers above; group deadlines are separate (heavy tasks only,
/// see group_deadline_offset_saturating).
[[nodiscard]] inline SubtaskWindows subtask_windows(SubtaskIndex q,
                                                    std::int64_t num,
                                                    std::int64_t den) {
  using U128 = __uint128_t;
  SubtaskWindows out;
  const U128 un = static_cast<U128>(num);
  const U128 ra = static_cast<U128>(q - 1) * static_cast<U128>(den);
  const U128 rb = static_cast<U128>(q) * static_cast<U128>(den);
  const U128 fa = ra / un;            // floor((q-1)*den / num)
  const U128 fb = rb / un;            // floor(q*den / num)
  const U128 cb = fb + (rb % un != 0 ? 1 : 0);  // ceil(q*den / num)
  out.b = static_cast<int>(cb - fb);
  const U128 sat = static_cast<U128>(kSlotSaturated);
  out.saturated = fa >= sat || cb >= sat;
  out.release_offset =
      fa >= sat ? kSlotSaturated : static_cast<Slot>(fa);
  out.deadline_offset =
      cb >= sat ? kSlotSaturated : static_cast<Slot>(cb);
  if (!out.saturated) {
    // (fa+1)*num - (q-1)*den is in (0, num] by the floor definition, so the
    // narrowing below cannot lose bits.
    out.first_alloc_num =
        static_cast<std::int64_t>((fa + 1) * un - ra);
  }
  return out;
}

/// Saturating twin of group_deadline_offset: same cascade, but each
/// deadline is evaluated with 128-bit clamping and the loop is capped at
/// kGroupCascadeCap steps.  Returns kSlotSaturated (and sets *saturated)
/// when the cascade runs past the cap or into the horizon.
[[nodiscard]] inline Slot group_deadline_offset_saturating(SubtaskIndex q,
                                                           std::int64_t num,
                                                           std::int64_t den,
                                                           bool* saturated) {
  if (num <= den - num) return 0;  // light (w <= 1/2): no cascade
  using U128 = __uint128_t;
  const U128 un = static_cast<U128>(num);
  const U128 sat = static_cast<U128>(kSlotSaturated);
  U128 prev_fa = static_cast<U128>(q - 1) * static_cast<U128>(den) / un;
  for (SubtaskIndex j = q; j - q < kGroupCascadeCap; ++j) {
    const U128 rb = static_cast<U128>(j) * static_cast<U128>(den);
    const U128 fb = rb / un;
    const U128 cb = fb + (rb % un != 0 ? 1 : 0);
    if (cb >= sat) break;
    if (j > q && cb - prev_fa >= 3) return static_cast<Slot>(cb) - 1;
    if (cb == fb) return static_cast<Slot>(cb);
    prev_fa = fb;
  }
  if (saturated != nullptr) *saturated = true;
  return kSlotSaturated;
}

/// Rational reference implementations of the window formulas above.
///
/// The primary functions run on the integer fast path (floor_div/ceil_div
/// divide 128-bit integers directly); these twins evaluate the same
/// expressions through full pfr::Rational arithmetic -- construct the
/// fraction, normalize, then floor/ceil.  They are deliberately an
/// *independent* code path: EngineConfig::verify_priorities cross-checks
/// every cached Pd2Priority against them at dispatch time, and the window
/// property tests assert fast path == oracle across weights and horizons.
/// Never call these from scheduling hot paths.
namespace oracle {

[[nodiscard]] inline Slot release_offset(SubtaskIndex q, const Rational& w) {
  return (Rational{q - 1} / w).floor();
}

[[nodiscard]] inline Slot deadline_offset(SubtaskIndex q, const Rational& w) {
  return (Rational{q} / w).ceil();
}

[[nodiscard]] inline int b_bit(SubtaskIndex q, const Rational& w) {
  return static_cast<int>((Rational{q} / w).ceil() - (Rational{q} / w).floor());
}

[[nodiscard]] inline Slot window_length(SubtaskIndex q, const Rational& w) {
  return deadline_offset(q, w) - release_offset(q, w);
}

[[nodiscard]] inline Slot group_deadline_offset(SubtaskIndex q,
                                                const Rational& w) {
  if (w <= Rational{1, 2}) return 0;
  // Same cascade cap as the fast path (kGroupCascadeCap) so both sides
  // reach the saturation verdict on the same step; the arithmetic inside
  // remains the independent Rational path.
  for (SubtaskIndex j = q; j - q < kGroupCascadeCap; ++j) {
    if (j > q && window_length(j, w) >= 3) return deadline_offset(j, w) - 1;
    if (b_bit(j, w) == 0) return deadline_offset(j, w);
  }
  return kSlotSaturated;
}

/// Bounded refutation pass for a *saturated* group-deadline verdict.
/// Confirming saturation exactly means walking the rational cascade all the
/// way to kGroupCascadeCap (2^21 Rational steps -- seconds per call), which
/// would make verify_priorities unusable on degraded heavy tasks.  Instead
/// this runs the same independent cascade for at most `budget` steps:
///   * cascade terminates within the budget at a value below the clamp ->
///     the verdict is REFUTED (returns true; the caller throws);
///   * cascade still alive (or already past the clamp) -> the verdict
///     stands (returns false).
/// Any arithmetic divergence between the integer cascade and this rational
/// one shows within the first few steps, so the budget trades none of the
/// cross-check's bug-finding power for a ~1000x cheaper verdict.
[[nodiscard]] inline bool group_deadline_saturation_refuted(
    SubtaskIndex q, const Rational& w, Slot gen_start,
    SubtaskIndex budget = 1024) {
  if (w <= Rational{1, 2}) return true;  // light tasks never cascade
  for (SubtaskIndex j = q; j - q < budget; ++j) {
    if (j > q && window_length(j, w) >= 3) {
      return gen_start + deadline_offset(j, w) - 1 < kSlotSaturated;
    }
    if (b_bit(j, w) == 0) {
      return gen_start + deadline_offset(j, w) < kSlotSaturated;
    }
  }
  return false;  // cascade alive after `budget` length-2 windows
}

}  // namespace oracle

}  // namespace pfr::pfair
