/// \file windows.h
/// \brief Pfair window arithmetic: pseudo-releases, pseudo-deadlines, b-bits.
///
/// For a (sub)task stream of weight w, the i-th subtask of a periodic task
/// has r(T_i) = floor((i-1)/w), d(T_i) = ceil(i/w) and b-bit
/// b(T_i) = ceil(i/w) - floor(i/w) (Sec. 2 of the paper).  The adaptable
/// (AIS) generalization, Eqns. (2)-(4), evaluates the same expressions with
/// the *local* index q = j - z inside the current generation (z = Id(T_j)-1)
/// and the task's *scheduling weight* at the release of T_j.  These helpers
/// are pure functions of (q, w); generation/offset bookkeeping lives in
/// task.h.
#pragma once

#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::pfair {

/// floor((q-1)/w): release offset of the q-th subtask (q >= 1) of a stream
/// of weight w, relative to the stream's start.
[[nodiscard]] inline Slot release_offset(SubtaskIndex q, const Rational& w) {
  return floor_div(q - 1, w);
}

/// ceil(q/w): deadline offset of the q-th subtask relative to the stream's
/// start.
[[nodiscard]] inline Slot deadline_offset(SubtaskIndex q, const Rational& w) {
  return ceil_div(q, w);
}

/// b-bit of the q-th subtask: ceil(q/w) - floor(q/w); 1 iff the window of
/// subtask q overlaps the window of subtask q+1 (Eqn. (3)).
[[nodiscard]] inline int b_bit(SubtaskIndex q, const Rational& w) {
  return static_cast<int>(ceil_div(q, w) - floor_div(q, w));
}

/// Window length of the q-th subtask: ceil(q/w) - floor((q-1)/w).
/// For w <= 1/2 this is always >= 2, and >= 3 whenever the b-bit is 1
/// (facts used throughout the correctness proof).
[[nodiscard]] inline Slot window_length(SubtaskIndex q, const Rational& w) {
  return deadline_offset(q, w) - release_offset(q, w);
}

/// Group deadline offset of the q-th subtask of a stream of weight w,
/// relative to the stream's start (the third PD2 tie-break, needed only for
/// heavy tasks: w > 1/2).  Definition (Anderson & Srinivasan): the earliest
/// time t >= d(T_q) such that t = d(T_j) with b(T_j) = 0, or t = d(T_j) - 1
/// with |w(T_j)| = 3, for some j >= q -- the end of the cascade of
/// length-two windows that a late scheduling of T_q could trigger.  Light
/// tasks have no cascade; 0 is returned for them.
[[nodiscard]] inline Slot group_deadline_offset(SubtaskIndex q,
                                                const Rational& w) {
  if (w <= Rational{1, 2}) return 0;
  for (SubtaskIndex j = q;; ++j) {
    if (j > q && window_length(j, w) >= 3) return deadline_offset(j, w) - 1;
    if (b_bit(j, w) == 0) return deadline_offset(j, w);
  }
}

/// Deadline of subtask T_j given its release and Eqn. (2):
/// d = r + ceil(q/w) - floor((q-1)/w), where q = j - z is the local index
/// within the generation and w the scheduling weight at the release.
[[nodiscard]] inline Slot deadline_from_release(Slot release, SubtaskIndex q,
                                                const Rational& w) {
  return release + window_length(q, w);
}

/// Rational reference implementations of the window formulas above.
///
/// The primary functions run on the integer fast path (floor_div/ceil_div
/// divide 128-bit integers directly); these twins evaluate the same
/// expressions through full pfr::Rational arithmetic -- construct the
/// fraction, normalize, then floor/ceil.  They are deliberately an
/// *independent* code path: EngineConfig::verify_priorities cross-checks
/// every cached Pd2Priority against them at dispatch time, and the window
/// property tests assert fast path == oracle across weights and horizons.
/// Never call these from scheduling hot paths.
namespace oracle {

[[nodiscard]] inline Slot release_offset(SubtaskIndex q, const Rational& w) {
  return (Rational{q - 1} / w).floor();
}

[[nodiscard]] inline Slot deadline_offset(SubtaskIndex q, const Rational& w) {
  return (Rational{q} / w).ceil();
}

[[nodiscard]] inline int b_bit(SubtaskIndex q, const Rational& w) {
  return static_cast<int>((Rational{q} / w).ceil() - (Rational{q} / w).floor());
}

[[nodiscard]] inline Slot window_length(SubtaskIndex q, const Rational& w) {
  return deadline_offset(q, w) - release_offset(q, w);
}

[[nodiscard]] inline Slot group_deadline_offset(SubtaskIndex q,
                                                const Rational& w) {
  if (w <= Rational{1, 2}) return 0;
  for (SubtaskIndex j = q;; ++j) {
    if (j > q && window_length(j, w) >= 3) return deadline_offset(j, w) - 1;
    if (b_bit(j, w) == 0) return deadline_offset(j, w);
  }
}

}  // namespace oracle

}  // namespace pfr::pfair
