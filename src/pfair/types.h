/// \file types.h
/// \brief Fundamental vocabulary types for the Pfair scheduling library.
#pragma once

#include <cstdint>
#include <limits>

#include "rational/rational.h"

namespace pfr::pfair {

/// Discrete time.  Slot t is the real interval [t, t+1); "time t" is the
/// beginning of slot t.  All scheduling happens at slot boundaries.
using Slot = std::int64_t;

/// 1-based index i of subtask T_i within its task.
using SubtaskIndex = std::int64_t;

/// Dense task identifier (index into the engine's task table).
using TaskId = std::int32_t;

/// Sentinel for "never happens / not yet known".
inline constexpr Slot kNever = std::numeric_limits<Slot>::max() / 4;

/// Reweighting scheme selector (see reweight.h for the rule definitions).
enum class ReweightPolicy : std::uint8_t {
  /// PD2-LJ: leave with the old weight (rule L), rejoin with the new (rule J).
  /// Coarse-grained: per-event drift is unbounded (Theorem 3).
  kLeaveJoin,
  /// PD2-OI: rules O and I.  Fine-grained: per-event drift <= 2 (Theorem 5).
  kOmissionIdeal,
  /// Use OI only when the weight changes by at least a configured magnitude
  /// ratio; small changes fall back to LJ (efficiency-versus-accuracy
  /// hybrid, per Block & Anderson WPDRTS'05).
  kHybridMagnitude,
  /// Use OI for at most a configured number of events per slot; excess
  /// events in the same slot fall back to LJ.
  kHybridBudget,
};

/// Which mechanism actually handled a weight-change initiation.
enum class RuleApplied : std::uint8_t {
  kNone,            ///< no subtask released yet: enacted immediately
  kBetween,         ///< between windows (d(T_j) <= t_c): enact at max(t_c, d+b)
  kRuleO,           ///< omission-changeable: halt + enact via rule O
  kRuleIIncrease,   ///< ideal-changeable increase: enact now, release at D+b
  kRuleIDecrease,   ///< ideal-changeable decrease: enact at D+b
  kLeaveJoin,       ///< rule L/J: rejoin at max(t_c, d(T_j)+b(T_j))
};

/// Candidate-selection strategy for the per-slot PD2 dispatch.  All three
/// produce bit-identical schedules (the cross-validation tests and the
/// verify_priorities oracle assert it); they differ only in per-slot cost.
enum class DispatchMode : std::uint8_t {
  /// Rescan every task each slot, then sort / partial-sort the candidates.
  /// O(N log N) per slot.  The reference implementation: the
  /// verify_priorities oracle recomputes dispatch decisions this way.
  kScan,
  /// Rescan every task each slot into a binary heap (O(N) heapify + M
  /// O(log N) pops).  Kept to exercise ReadyQueue on real workloads.
  kHeapRebuild,
  /// Incremental indexed ready queue: one cached-priority entry per task,
  /// updated only when the task's front candidate changes (release, rule-O
  /// halt, dispatch, reweight enactment, quarantine).  O(changes log N)
  /// per slot -- the production fast path, and the default.
  kIncremental,
};

/// Admission control for property (W): sum of scheduling weights <= M.
enum class PolicingMode : std::uint8_t {
  /// Grant the largest weight <= request that keeps the reserved total <= M.
  kClamp,
  /// Refuse (ignore) requests that would exceed M.
  kReject,
  /// No policing.  Only for tests that deliberately overload the system.
  kOff,
};

/// How the engine sheds load when effective capacity (alive processors)
/// drops below the total task weight -- e.g. after a processor crash.
/// Every response is expressed as ordinary reweighting initiations or
/// leaves, so drift accounting and the Theorem 2-5 machinery still apply.
enum class DegradationMode : std::uint8_t {
  /// Do nothing; an overloaded system misses deadlines (baseline).
  kNone,
  /// Proportionally compress every active task's weight by
  /// capacity / total weight via the configured reweighting rules, and
  /// restore the nominal weights once capacity recovers.
  kCompress,
  /// Shed whole tasks in tie-rank order (highest rank = least favored
  /// first) via rule L until the remainder fits.  Irreversible.
  kShed,
  /// Keep current weights but freeze admissions: weight increases and
  /// late joins are rejected until capacity recovers.
  kFreeze,
};

/// What a validate-mode invariant violation does (EngineConfig::validate).
enum class ViolationPolicy : std::uint8_t {
  kThrow,       ///< throw std::logic_error (the strict test-suite default)
  kTrace,       ///< emit an invariant_violation event and continue
  kQuarantine,  ///< additionally quarantine the implicated task, if any
};

[[nodiscard]] constexpr const char* to_string(ReweightPolicy p) noexcept {
  switch (p) {
    case ReweightPolicy::kLeaveJoin: return "PD2-LJ";
    case ReweightPolicy::kOmissionIdeal: return "PD2-OI";
    case ReweightPolicy::kHybridMagnitude: return "PD2-Hybrid(mag)";
    case ReweightPolicy::kHybridBudget: return "PD2-Hybrid(budget)";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(DispatchMode m) noexcept {
  switch (m) {
    case DispatchMode::kScan: return "scan";
    case DispatchMode::kHeapRebuild: return "heap";
    case DispatchMode::kIncremental: return "incremental";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(DegradationMode m) noexcept {
  switch (m) {
    case DegradationMode::kNone: return "none";
    case DegradationMode::kCompress: return "compress";
    case DegradationMode::kShed: return "shed";
    case DegradationMode::kFreeze: return "freeze";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(ViolationPolicy p) noexcept {
  switch (p) {
    case ViolationPolicy::kThrow: return "throw";
    case ViolationPolicy::kTrace: return "trace";
    case ViolationPolicy::kQuarantine: return "quarantine";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(RuleApplied r) noexcept {
  switch (r) {
    case RuleApplied::kNone: return "immediate";
    case RuleApplied::kBetween: return "between";
    case RuleApplied::kRuleO: return "rule-O";
    case RuleApplied::kRuleIIncrease: return "rule-I(inc)";
    case RuleApplied::kRuleIDecrease: return "rule-I(dec)";
    case RuleApplied::kLeaveJoin: return "leave/join";
  }
  return "?";
}

}  // namespace pfr::pfair
