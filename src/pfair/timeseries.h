/// \file timeseries.h
/// \brief Per-slot metric recording for plotting and offline analysis.
///
/// Samples drift, lag and allocation progress for selected tasks after each
/// engine step and exports tidy CSV (one row per slot-task pair) -- the
/// format the paper's Fig. 11-style plots are made from.
#pragma once

#include <string>
#include <vector>

#include "pfair/engine.h"

namespace pfr::pfair {

class MetricsRecorder {
 public:
  /// Records the given tasks (all tasks if empty).
  explicit MetricsRecorder(std::vector<TaskId> tasks = {});

  /// Samples the engine's state at its current time; call once per step.
  void sample(const Engine& engine);

  struct Sample {
    Slot slot;
    TaskId task;
    double drift;
    double lag;
    double cum_ips;
    double cum_icsw;
    std::int64_t scheduled;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Tidy CSV: slot,task,name,drift,lag,cum_ips,cum_icsw,scheduled.
  [[nodiscard]] std::string to_csv(const Engine& engine) const;

  /// Convenience: steps the engine to `horizon`, sampling each slot.
  static MetricsRecorder record_run(Engine& engine, Slot horizon,
                                    std::vector<TaskId> tasks = {});

 private:
  std::vector<TaskId> tasks_;
  std::vector<Sample> samples_;
};

}  // namespace pfr::pfair
