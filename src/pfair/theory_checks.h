/// \file theory_checks.h
/// \brief Independent offline recomputation of the ideal schedules.
///
/// ideal.cc accrues I_SW/I_CSW *online* inside the engine's slot loop.
/// This module re-derives the same quantities *offline*, from nothing but a
/// finished task's records (subtask windows, halting/absence marks, and the
/// scheduling-weight history): a from-scratch second implementation of the
/// Fig. 5 recursion that the differential tests compare against the
/// engine's totals, plus checks of the appendix properties (AF1)-(AF4) on
/// the recomputed values.  Disagreement in a single slot of a single run
/// fails a test -- this is the strongest oracle in the suite.
#pragma once

#include <string>
#include <vector>

#include "pfair/task.h"
#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::pfair {

/// Offline recomputation result for one task over [0, horizon).
struct IdealRecomputation {
  Rational cum_isw;
  Rational cum_icsw;
  /// Recomputed per-subtask nominal completion times and final-slot
  /// allocations (parallel to task.subtasks).
  std::vector<Slot> nominal_complete;
  std::vector<Rational> last_slot_alloc;
  /// Per-slot task-level I_SW allocations (index = slot).
  std::vector<Rational> isw_per_slot;
};

/// swt(T, t) reconstructed from the recorded switch history.
[[nodiscard]] Rational swt_at(const TaskState& task, Slot t);

/// Recomputes the ideal allocations of `task` over [0, horizon) from its
/// records alone (no engine state).
[[nodiscard]] IdealRecomputation recompute_ideal(const TaskState& task,
                                                 Slot horizon);

/// Renders the Fig. 1/3/7/12-style allocation grid: one row per subtask,
/// one column per slot, each cell the subtask's nominal I_SW allocation in
/// that slot (exact fractions), with halt/absence annotations.
[[nodiscard]] std::string render_allocation_grid(const TaskState& task,
                                                 Slot horizon);

/// Checks the appendix allocation properties on the recomputation:
///   (AF1) per-slot task allocation <= swt(T, t);
///   (AF3) D(I_CSW, T_i) <= d(T_i);
///   (AF4) no allocation outside [r(T_i), D(I_SW, T_i)).
/// Returns human-readable violations (empty = all hold).
[[nodiscard]] std::vector<std::string> check_allocation_properties(
    const TaskState& task, Slot horizon);

}  // namespace pfr::pfair
