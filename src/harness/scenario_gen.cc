#include "harness/scenario_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/scenario.h"
#include "pfair/weight.h"
#include "util/rng.h"

namespace pfr::harness {
namespace {

using pfair::DegradationMode;
using pfair::PolicingMode;
using pfair::ReweightPolicy;
using pfair::ScenarioSpec;
using pfair::Slot;
using pfair::ViolationPolicy;

/// Weight-grid denominators the generator draws from; mixing them stresses
/// the rational window math with non-trivial gcd structure.
constexpr std::int64_t kGridDens[] = {12, 20, 24, 60, 120};

void pick_policy(Xoshiro256& rng, pfair::EngineConfig& cfg) {
  switch (rng.uniform_int(0, 9)) {
    case 0:
    case 1:
    case 2:
    case 3:
      cfg.policy = ReweightPolicy::kOmissionIdeal;
      break;
    case 4:
    case 5:
      cfg.policy = ReweightPolicy::kLeaveJoin;
      break;
    case 6:
    case 7: {
      cfg.policy = ReweightPolicy::kHybridMagnitude;
      constexpr double kRatios[] = {1.5, 2.0, 3.0};
      cfg.hybrid_magnitude_threshold =
          kRatios[rng.uniform_int(0, 2)];
      break;
    }
    default:
      cfg.policy = ReweightPolicy::kHybridBudget;
      cfg.hybrid_budget_per_slot = static_cast<int>(rng.uniform_int(0, 3));
      break;
  }
}

/// Draws a light weight on the 1/den grid, capped by `budget`; zero
/// numerator means the budget is exhausted.
Rational draw_light_weight(Xoshiro256& rng, std::int64_t den,
                           const Rational& budget) {
  Rational w{rng.uniform_int(1, den / 2), den};
  if (w > budget) {
    // Largest grid weight still within budget.
    const std::int64_t num = (budget.num() * den) / budget.den();
    if (num < 1) return Rational{0};
    w = Rational{std::min(num, den / 2), den};
  }
  return w;
}

}  // namespace

GeneratedScenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                                    const GenConfig& cfg) {
  Xoshiro256 rng = Xoshiro256::for_stream(seed, index);
  ScenarioSpec spec;

  const bool cluster = cfg.allow_cluster && rng.bernoulli(0.45);
  const int shards =
      cluster ? static_cast<int>(rng.uniform_int(2, 4)) : 1;
  std::vector<int> procs;
  int total_procs = 0;
  for (int k = 0; k < shards; ++k) {
    procs.push_back(
        static_cast<int>(rng.uniform_int(1, cfg.max_processors)));
    total_procs += procs.back();
  }
  if (cluster) {
    spec.shard_processors = procs;
    constexpr const char* kPlacements[] = {"first-fit", "worst-fit", "wwta"};
    spec.placement = kPlacements[rng.uniform_int(0, 2)];
    if (rng.bernoulli(0.35)) {
      spec.rebalance.enabled = true;
      constexpr Slot kPeriods[] = {16, 32, 64};
      spec.rebalance.period = kPeriods[rng.uniform_int(0, 2)];
      spec.rebalance.threshold =
          rng.bernoulli(0.5) ? Rational{1, 4} : Rational{1, 8};
      spec.rebalance.max_moves = static_cast<int>(rng.uniform_int(1, 4));
    }
  } else {
    spec.config.processors = procs[0];
  }

  pick_policy(rng, spec.config);
  spec.config.policing =
      rng.bernoulli(0.6) ? PolicingMode::kClamp : PolicingMode::kReject;
  switch (rng.uniform_int(0, 19)) {
    case 0:
    case 1:
    case 2:
      spec.config.violations = ViolationPolicy::kQuarantine;
      break;
    case 3:
    case 4:
    case 5:
    case 6:
    case 7:
    case 8:
    case 9:
      spec.config.violations = ViolationPolicy::kTrace;
      break;
    default:
      spec.config.violations = ViolationPolicy::kThrow;
      break;
  }
  constexpr DegradationMode kModes[] = {
      DegradationMode::kNone, DegradationMode::kCompress,
      DegradationMode::kShed, DegradationMode::kFreeze};
  spec.config.degradation = kModes[rng.uniform_int(0, 3)];
  spec.config.validate = true;
  spec.horizon = rng.uniform_int(cfg.min_horizon, cfg.max_horizon);

  // ----- tasks -----
  // Single engine: fit within ~0.9 M.  Cluster: stay under the pigeonhole
  // bound sum(M_k) - K/2, below which no placement policy can reject a
  // light task, so generated scenarios always build.
  const std::int64_t den = kGridDens[rng.uniform_int(
      0, static_cast<std::int64_t>(std::size(kGridDens)) - 1)];
  Rational budget =
      cluster ? (Rational{total_procs} - Rational{shards, 2}) * rat(9, 10)
              : Rational{total_procs} * rat(9, 10);
  const bool heavy = cfg.allow_heavy && !cluster && rng.bernoulli(0.15);
  spec.config.allow_heavy = heavy;
  const int want_tasks =
      static_cast<int>(rng.uniform_int(cfg.min_tasks, cfg.max_tasks));
  std::vector<bool> is_heavy;
  std::vector<bool> leaves;
  for (int i = 0; i < want_tasks; ++i) {
    ScenarioSpec::TaskSpec t;
    t.name = "t" + std::to_string(i);
    bool this_heavy = false;
    if (heavy && i == 0 && budget > Rational{1}) {
      // One static heavy task; never reweighted, migrated, or left.
      // (Short-circuit before the bernoulli so the default knob value
      // consumes no RNG draws and historical streams stay byte-identical.)
      if (cfg.saturation_fraction > 0 &&
          rng.bernoulli(cfg.saturation_fraction)) {
        constexpr std::int64_t kSatDen = std::int64_t{1} << 31;
        t.weight = Rational{kSatDen - rng.uniform_int(1, 8), kSatDen};
      } else {
        t.weight = Rational{rng.uniform_int(den / 2 + 1, den), den};
      }
      this_heavy = true;
    } else {
      t.weight = draw_light_weight(rng, den, budget);
      if (t.weight.is_zero()) break;  // budget exhausted
    }
    budget -= t.weight;
    if (rng.bernoulli(0.3) && spec.horizon > 4) {
      t.join = rng.uniform_int(1, spec.horizon / 2);
    }
    if (rng.bernoulli(0.4)) t.rank = static_cast<int>(rng.uniform_int(0, 3));
    if (rng.bernoulli(cfg.separation_fraction)) {
      t.separations.emplace_back(rng.uniform_int(1, 4),
                                 rng.uniform_int(1, 8));
    }
    if (rng.bernoulli(0.08)) {
      t.absences.push_back(rng.uniform_int(1, 6));
    }
    spec.tasks.push_back(std::move(t));
    is_heavy.push_back(this_heavy);
    leaves.push_back(false);
  }

  const auto n = static_cast<std::int64_t>(spec.tasks.size());
  const Slot h = spec.horizon;

  // ----- reweight storm + leaves (admission pressure) -----
  const bool storm = rng.bernoulli(0.25);
  for (std::int64_t i = 0; i < n; ++i) {
    const ScenarioSpec::TaskSpec& t = spec.tasks[static_cast<std::size_t>(i)];
    if (is_heavy[static_cast<std::size_t>(i)] || h <= t.join + 2) continue;
    std::int64_t events = rng.uniform_int(0, 3);
    if (storm) events *= 3;
    for (std::int64_t e = 0; e < events; ++e) {
      ScenarioSpec::EventSpec ev;
      ev.task = t.name;
      ev.weight = Rational{rng.uniform_int(1, den / 2), den};
      ev.at = rng.uniform_int(t.join + 1, h - 1);
      spec.events.push_back(std::move(ev));
    }
    if (rng.bernoulli(0.12)) {
      ScenarioSpec::EventSpec ev;
      ev.task = t.name;
      ev.is_leave = true;
      ev.at = rng.uniform_int(std::max<Slot>(t.join + 1, h / 2), h - 1);
      spec.events.push_back(std::move(ev));
      leaves[static_cast<std::size_t>(i)] = true;
    }
  }

  // ----- fault plan -----
  if (cfg.allow_faults && rng.bernoulli(0.6) && h > 8) {
    for (int k = 0; k < shards; ++k) {
      const int m = procs[static_cast<std::size_t>(k)];
      // Crash/recover pairs on distinct high cpus; cpu 0 never crashes, so
      // every shard keeps at least one processor alive.
      const std::int64_t pairs = rng.uniform_int(0, std::min(2, m - 1));
      for (std::int64_t p = 0; p < pairs; ++p) {
        const Slot at = rng.uniform_int(1, h - 2);
        ScenarioSpec::FaultSpec crash;
        crash.kind = pfair::FaultKind::kProcCrash;
        crash.processor = m - 1 - static_cast<int>(p);
        crash.at = at;
        crash.shard = cluster ? k : -1;
        spec.faults.push_back(crash);
        ScenarioSpec::FaultSpec rec = crash;
        rec.kind = pfair::FaultKind::kProcRecover;
        rec.at = at + rng.uniform_int(4, 48);  // may land past the horizon
        spec.faults.push_back(rec);
      }
      const std::int64_t overruns = rng.uniform_int(0, 2);
      for (std::int64_t o = 0; o < overruns; ++o) {
        ScenarioSpec::FaultSpec f;
        f.kind = pfair::FaultKind::kOverrun;
        // Prefer a cpu no crash pair touches (overrunning a down processor
        // is legal but teaches nothing).
        f.processor = static_cast<int>(
            rng.uniform_int(0, std::max<std::int64_t>(0, m - 1 - pairs)));
        f.at = rng.uniform_int(1, h - 1);
        f.shard = cluster ? k : -1;
        spec.faults.push_back(f);
      }
    }
    // A lossy control plane: drop or delay some task's requests.
    const std::int64_t request_faults = rng.uniform_int(0, 2);
    for (std::int64_t i = 0; i < request_faults && n > 0; ++i) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      if (is_heavy[victim]) continue;
      ScenarioSpec::FaultSpec f;
      f.task = spec.tasks[victim].name;
      f.at = rng.uniform_int(1, h - 1);
      if (rng.bernoulli(0.5)) {
        f.kind = pfair::FaultKind::kDropRequest;
      } else {
        f.kind = pfair::FaultKind::kDelayRequest;
        f.delay = rng.uniform_int(1, 8);
      }
      spec.faults.push_back(std::move(f));
    }
  }

  // ----- scripted migrations (cluster only) -----
  if (cluster && n > 1 && h > 8) {
    // Placement must be probed to pick a *different* target shard:
    // build the cluster exactly as build_cluster_scenario will (same admit
    // order and parameters decide the same shards) and read it back.
    const std::int64_t moves = rng.uniform_int(0, n / 4);
    if (moves > 0) {
      const cluster::BuiltClusterScenario probe =
          cluster::build_cluster_scenario(spec);
      std::vector<bool> migrated(static_cast<std::size_t>(n), false);
      for (std::int64_t mv = 0; mv < moves; ++mv) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        if (migrated[i] || leaves[i]) continue;
        const ScenarioSpec::TaskSpec& t = spec.tasks[i];
        const auto ref = probe.cluster->find(t.name);
        if (!ref) continue;
        ScenarioSpec::MigrateSpec mig;
        mig.task = t.name;
        mig.to_shard = static_cast<int>(rng.uniform_int(0, shards - 1));
        if (mig.to_shard == ref->shard) {
          mig.to_shard = (mig.to_shard + 1) % shards;
        }
        mig.at = rng.uniform_int(t.join + 1, h - 1);
        spec.migrations.push_back(std::move(mig));
        migrated[i] = true;
      }
    }
  }

  // ----- elastic control plane (cluster only) -----
  // Drawn from a salted stream taken after every base draw, so enabling
  // (or retuning) elastic chaos never perturbs the base scenario stream a
  // historical (seed, index) maps to.
  Xoshiro256 erng = Xoshiro256::for_stream(seed ^ 0x454C415354494CULL, index);
  if (cluster && cfg.elastic_fraction > 0.0 &&
      erng.bernoulli(cfg.elastic_fraction)) {
    spec.shard_speeds.assign(static_cast<std::size_t>(shards), 1);
    if (cfg.max_shard_speed > 1 && erng.bernoulli(0.6)) {
      for (int k = 0; k < shards; ++k) {
        spec.shard_speeds[static_cast<std::size_t>(k)] =
            static_cast<int>(erng.uniform_int(1, cfg.max_shard_speed));
      }
    }
    spec.elastic.enabled = true;
    spec.elastic.period = erng.uniform_int(
        std::max(1, cfg.min_control_period),
        std::max(cfg.min_control_period, cfg.max_control_period));
    spec.elastic.lease = spec.elastic.period * erng.uniform_int(2, 6);
    spec.elastic.max_units = static_cast<int>(erng.uniform_int(2, 8));
    spec.elastic.allow_migration = erng.bernoulli(0.7);

    // Heterogeneous speeds re-place every task, which can strand a scripted
    // migration on its own target shard (the cluster rejects no-op moves).
    // Re-probe placement under the final spec and steer those aside.
    if (!spec.migrations.empty()) {
      // Probe without the migrations themselves: a now-stranded move would
      // make this very build throw.
      ScenarioSpec probe_spec = spec;
      probe_spec.migrations.clear();
      const cluster::BuiltClusterScenario probe =
          cluster::build_cluster_scenario(probe_spec);
      for (ScenarioSpec::MigrateSpec& mig : spec.migrations) {
        const auto ref = probe.cluster->find(mig.task);
        if (ref && mig.to_shard == ref->shard) {
          mig.to_shard = (mig.to_shard + 1) % shards;
        }
      }
    }

    // Load-skew burst: reweight every light task placement put on one hot
    // shard up to the grid maximum at nearly the same slot.  Policing
    // clamps whatever no longer fits, and the controller gets a skewed
    // steady state to lend against.
    if (cfg.elastic_skew > 0.0 && erng.bernoulli(cfg.elastic_skew) &&
        n > 0 && h > 8) {
      const cluster::BuiltClusterScenario probe =
          cluster::build_cluster_scenario(spec);
      const int hot = static_cast<int>(erng.uniform_int(0, shards - 1));
      const Slot burst = erng.uniform_int(2, h - 2);
      for (std::int64_t i = 0; i < n; ++i) {
        const auto ix = static_cast<std::size_t>(i);
        if (is_heavy[ix] || leaves[ix]) continue;
        const ScenarioSpec::TaskSpec& t = spec.tasks[ix];
        const auto ref = probe.cluster->find(t.name);
        if (!ref || ref->shard != hot) continue;
        const Slot at = std::max<Slot>(t.join + 1, burst);
        if (at >= h) continue;
        ScenarioSpec::EventSpec ev;
        ev.task = t.name;
        ev.weight = Rational{den / 2, den};
        ev.at = at;
        spec.events.push_back(std::move(ev));
      }
    }
  }

  GeneratedScenario out;
  out.seed = seed;
  out.index = index;
  out.text = pfair::render_scenario(spec);
  out.spec = pfair::parse_scenario_string(
      out.text, "gen-" + std::to_string(seed) + "-" + std::to_string(index));

  // The ingest plan draws from its own stream (salted seed) so that the
  // scenario text above stays byte-identical to pre-ingest hunts: replaying
  // an old (seed, index) still reproduces the old `.scn` exactly.
  Xoshiro256 irng = Xoshiro256::for_stream(seed ^ 0x494E4745535452ULL, index);
  if (cfg.ingest_fraction > 0.0 && irng.bernoulli(cfg.ingest_fraction)) {
    out.ingest.enabled = true;
    out.ingest.producers = static_cast<int>(
        irng.uniform_int(1, std::max(1, cfg.max_ingest_producers)));
    const auto min_ring =
        static_cast<std::int64_t>(std::max<std::size_t>(cfg.min_ingest_ring, 8));
    const auto max_ring = std::max(
        min_ring, static_cast<std::int64_t>(cfg.max_ingest_ring));
    out.ingest.ring_capacity =
        static_cast<std::size_t>(irng.uniform_int(min_ring, max_ring));
    out.ingest.malformed_rate =
        irng.bernoulli(0.5) ? 0.0
                            : irng.uniform(0.0, cfg.max_ingest_malformed_rate);
    out.ingest.load_seed = irng();
    out.ingest.requests = static_cast<std::uint64_t>(
        irng.uniform_int(128, 1024));
    out.ingest.tasks = static_cast<int>(irng.uniform_int(4, 16));
    out.ingest.processors = static_cast<int>(irng.uniform_int(2, 8));
  }
  return out;
}

}  // namespace pfr::harness
