#include "harness/property_runner.h"

#include <exception>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/elastic/controller.h"
#include "cluster/scenario.h"
#include "net/feed.h"
#include "net/ingest.h"
#include "net/spsc_ring.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "pfair/verify.h"
#include "serve/load_gen.h"
#include "serve/service.h"

namespace pfr::harness {
namespace {

using pfair::Engine;
using pfair::EngineStats;
using pfair::ReweightPolicy;
using pfair::ScenarioSpec;
using pfair::Slot;
using pfair::TaskId;
using pfair::TaskState;
using obs::TelCounter;

std::int64_t fault_total(const EngineStats& s) {
  return static_cast<std::int64_t>(s.proc_crashes) + s.proc_recoveries +
         s.overruns + s.dropped_requests + s.delayed_requests;
}

/// Thm. 5 on a finished engine: each generation boundary may add at most
/// 2 of |drift| per folded initiation under PD2-OI.  Tasks with IS
/// separations are NOT excused: I_PS keeps accruing wt through a separation
/// gap while I_CSW follows the delayed releases, so the raw drift sample
/// picks up wt x delay of displacement the theorem does not attribute to
/// the reweighting event -- but the engine ledgers that displacement
/// separately (DriftPoint::displacement), and subtracting it restores the
/// theorem's scope for separated tasks too.  An earlier revision skipped
/// separated tasks wholesale, which silently exempted their genuine
/// reweighting drift from the bound.
void check_drift_bound(const ScenarioSpec& spec, const Engine& eng,
                       std::vector<std::string>& out) {
  (void)spec;
  for (std::size_t i = 0; i < eng.task_count(); ++i) {
    const TaskState& task = eng.task(static_cast<TaskId>(i));
    Rational prev;
    for (const auto& point : task.drift_history) {
      const Rational charged = point.value - point.displacement;
      const Rational delta = (charged - prev).abs();
      const int folded = point.events_folded == 0 ? 1 : point.events_folded;
      if (delta > Rational{2 * folded}) {
        out.push_back("Thm-5 drift bound: task '" + task.name + "' at slot " +
                      std::to_string(point.at) + " jumped " +
                      delta.to_string() + " > 2*" + std::to_string(folded) +
                      " (raw " + point.value.to_string() + ", displacement " +
                      point.displacement.to_string() + ")");
      }
      prev = charged;
    }
  }
}

void check_engine_telemetry(const Engine& eng, const obs::TelemetryShard& tel,
                            std::vector<std::string>& out) {
  const EngineStats& s = eng.stats();
  const auto expect = [&out](const char* what, std::int64_t engine_side,
                             std::int64_t tel_side) {
    if (engine_side != tel_side) {
      out.push_back(std::string("telemetry mismatch: ") + what + " engine=" +
                    std::to_string(engine_side) +
                    " telemetry=" + std::to_string(tel_side));
    }
  };
  expect("slots", s.slots, tel.counter(TelCounter::kSlots));
  expect("dispatched", s.dispatched, tel.counter(TelCounter::kDispatched));
  expect("halts", s.halts, tel.counter(TelCounter::kHalts));
  expect("initiations", s.initiations, tel.counter(TelCounter::kInitiations));
  expect("enactments", s.enactments, tel.counter(TelCounter::kEnactments));
  expect("misses", static_cast<std::int64_t>(eng.misses().size()),
         tel.counter(TelCounter::kMisses));
  expect("disruptions", s.disruptions,
         tel.counter(TelCounter::kDisruptions));
  expect("faults", fault_total(s), tel.counter(TelCounter::kFaults));
}

/// Re-runs a failing scenario with a record-only FlightRecorder attached
/// and dumps the ring.  Best effort: a repro run that cannot be built (or
/// throws mid-flight) still dumps whatever the ring caught.
bool dump_flight(const ScenarioSpec& spec, const RunnerConfig& cfg) {
  obs::FlightRecorderConfig fr_cfg;
  fr_cfg.capacity = cfg.flight_capacity;
  fr_cfg.max_dumps = 0;  // record-only; we dump manually below
  const bool is_cluster = !spec.shard_processors.empty();
  obs::FlightRecorder recorder{
      fr_cfg, is_cluster ? static_cast<int>(spec.shard_processors.size()) : 1};
  try {
    if (is_cluster) {
      auto built = cluster::build_cluster_scenario(spec);
      built.cluster->set_event_sink(&recorder);
      built.cluster->run_until(built.horizon);
    } else {
      auto built = pfair::build_scenario(spec);
      built.engine->set_event_sink(&recorder);
      built.engine->run_until(built.horizon);
    }
  } catch (const std::exception&) {
    // The ring holds the events up to the throw -- exactly what we want.
  }
  return recorder.dump_to_file(cfg.flight_dump_path);
}

RunReport run_single(const ScenarioSpec& spec, const RunnerConfig& cfg) {
  RunReport report;
  obs::TelemetryShard tel;
  pfair::BuiltScenario built;
  try {
    built = pfair::build_scenario(spec);
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("build failed: ") + e.what());
    return report;
  }
  Engine& eng = *built.engine;
  if (cfg.check_telemetry) eng.set_telemetry(&tel);
  try {
    eng.run_until(built.horizon);
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("engine threw at slot ") +
                              std::to_string(eng.now()) + ": " + e.what());
  }
  report.slots = eng.now();
  report.misses = static_cast<std::int64_t>(eng.misses().size());
  report.violations = eng.stats().violations;
  report.faults = fault_total(eng.stats());
  report.digest = pfair::schedule_digest(eng);

  for (const pfair::Violation& v : pfair::verify_schedule(eng)) {
    report.failures.push_back("verify: " + v.what);
  }
  // A validate-mode check that failed under the trace/quarantine policies
  // is as much a finding as a throw -- the engine broke an invariant and
  // elected to keep running.
  if (report.violations > 0) {
    report.failures.push_back("validate-mode violations recorded: " +
                              std::to_string(report.violations));
  }
  if (cfg.check_drift_bound &&
      spec.config.policy == ReweightPolicy::kOmissionIdeal) {
    check_drift_bound(spec, eng, report.failures);
  }
  if (cfg.check_telemetry) check_engine_telemetry(eng, tel, report.failures);

  if (cfg.check_cross_mode_digest && report.failures.empty()) {
    // The incremental ready queue must be bit-identical to the reference
    // scan; a divergence is a dispatch fast-path bug.
    ScenarioSpec alt = spec;
    alt.config.dispatch_mode = pfair::DispatchMode::kScan;
    try {
      auto ref = pfair::build_scenario(alt);
      ref.engine->run_until(ref.horizon);
      const std::uint64_t ref_digest = pfair::schedule_digest(*ref.engine);
      if (ref_digest != report.digest) {
        report.failures.push_back(
            "dispatch-mode digest mismatch: incremental=" +
            std::to_string(report.digest) +
            " scan=" + std::to_string(ref_digest));
      }
    } catch (const std::exception& e) {
      report.failures.push_back(
          std::string("scan-mode reference run threw: ") + e.what());
    }
  }

  if (cfg.check_accrual_digest && report.failures.empty()) {
    // The primary (validate-mode) run keeps the SoA fast-accrual path
    // dormant, so arm it explicitly: one run with the batched fast path
    // and the rational dispatch oracle cross-checking every slot, one run
    // forced onto the pre-SoA per-subtask recursion.  Both must reproduce
    // the primary digest, and their ideal-schedule totals must agree
    // exactly, task by task.
    ScenarioSpec fast = spec;
    fast.config.validate = false;
    fast.config.verify_priorities = true;
    ScenarioSpec legacy = fast;
    legacy.config.legacy_accrual = true;
    try {
      auto f = pfair::build_scenario(fast);
      f.engine->run_until(f.horizon);
      auto l = pfair::build_scenario(legacy);
      l.engine->run_until(l.horizon);
      const std::uint64_t df = pfair::schedule_digest(*f.engine);
      const std::uint64_t dl = pfair::schedule_digest(*l.engine);
      if (df != report.digest || dl != report.digest) {
        report.failures.push_back(
            "accrual-mode digest mismatch: primary=" +
            std::to_string(report.digest) + " soa-fast=" +
            std::to_string(df) + " legacy=" + std::to_string(dl));
      }
      for (std::size_t i = 0; i < f.engine->task_count(); ++i) {
        const TaskState& a = f.engine->task(static_cast<TaskId>(i));
        const TaskState& b = l.engine->task(static_cast<TaskId>(i));
        if (a.cum_isw != b.cum_isw || a.cum_icsw != b.cum_icsw ||
            a.cum_ips != b.cum_ips ||
            a.drift_history.size() != b.drift_history.size()) {
          report.failures.push_back(
              "accrual-mode ideal totals diverge for task '" + a.name +
              "': fast (isw " + a.cum_isw.to_string() + ", icsw " +
              a.cum_icsw.to_string() + ", ips " + a.cum_ips.to_string() +
              ") legacy (isw " + b.cum_isw.to_string() + ", icsw " +
              b.cum_icsw.to_string() + ", ips " + b.cum_ips.to_string() +
              ")");
          break;
        }
        bool drift_ok = true;
        for (std::size_t k = 0; drift_ok && k < a.drift_history.size(); ++k) {
          drift_ok = a.drift_history[k].value == b.drift_history[k].value &&
                     a.drift_history[k].displacement ==
                         b.drift_history[k].displacement;
        }
        if (!drift_ok) {
          report.failures.push_back(
              "accrual-mode drift history diverges for task '" + a.name +
              "'");
          break;
        }
      }
    } catch (const std::exception& e) {
      report.failures.push_back(
          std::string("accrual-mode reference run threw: ") + e.what());
    }
  }
  return report;
}

RunReport run_cluster(const ScenarioSpec& spec, const RunnerConfig& cfg) {
  RunReport report;
  report.cluster = true;
  const int shards = static_cast<int>(spec.shard_processors.size());
  std::vector<std::size_t> threads = cfg.thread_counts;
  if (threads.empty()) threads.push_back(1);

  bool first = true;
  for (const std::size_t t : threads) {
    obs::Telemetry tel{shards};
    cluster::BuiltClusterScenario built;
    try {
      built = cluster::build_cluster_scenario(spec, t);
    } catch (const std::exception& e) {
      report.failures.push_back(std::string("build failed (threads=") +
                                std::to_string(t) + "): " + e.what());
      return report;
    }
    cluster::Cluster& cl = *built.cluster;
    if (cfg.check_telemetry) cl.set_telemetry(&tel);
    try {
      cl.run_until(built.horizon);
    } catch (const std::exception& e) {
      report.failures.push_back(std::string("cluster threw at slot ") +
                                std::to_string(cl.now()) + " (threads=" +
                                std::to_string(t) + "): " + e.what());
      return report;
    }
    const std::uint64_t digest = cl.schedule_digest();
    if (first) {
      report.digest = digest;
      report.slots = cl.now();
      report.migrations = cl.stats().migrations_completed;
      for (int k = 0; k < shards; ++k) {
        const Engine& eng = cl.shard(k);
        report.misses += static_cast<std::int64_t>(eng.misses().size());
        report.violations += eng.stats().violations;
        report.faults += fault_total(eng.stats());
      }
      for (const pfair::Violation& v : cl.verify()) {
        report.failures.push_back("verify: " + v.what);
      }
      if (report.violations > 0) {
        report.failures.push_back("validate-mode violations recorded: " +
                                  std::to_string(report.violations));
      }
      if (spec.elastic.enabled && cl.elastic() != nullptr) {
        // Lending conservation: the ledger's deltas must sum to zero, and
        // -- on fault-free runs -- the recorded per-slot capacities must
        // sum to the cluster's physical capacity at every slot (a loan
        // moves units, never mints them).
        try {
          cl.elastic()->ledger().check_conservation();
        } catch (const std::exception& e) {
          report.failures.push_back(std::string("elastic: ") + e.what());
        }
        if (spec.faults.empty() && spec.config.record_slot_trace) {
          std::int64_t physical = 0;
          for (int k = 0; k < shards; ++k) physical += cl.shard(k).processors();
          const std::size_t slots = cl.shard(0).trace().size();
          for (std::size_t s = 0; s < slots; ++s) {
            std::int64_t sum = 0;
            for (int k = 0; k < shards; ++k) {
              sum += cl.shard(k).trace()[s].capacity;
            }
            if (sum != physical) {
              report.failures.push_back(
                  "elastic: capacity conservation broke at slot " +
                  std::to_string(s) + ": sum " + std::to_string(sum) +
                  " != physical " + std::to_string(physical));
              break;
            }
          }
        }
      }
      if (cfg.check_telemetry) {
        // Shard k's engine publishes into telemetry shard k; each pair
        // must agree exactly (the seqlock is quiescent after run_until).
        for (int k = 0; k < shards; ++k) {
          std::vector<std::string> mismatches;
          check_engine_telemetry(cl.shard(k), tel.shard(k), mismatches);
          for (std::string& m : mismatches) {
            report.failures.push_back("shard" + std::to_string(k) + ": " +
                                      std::move(m));
          }
        }
      }
    } else if (digest != report.digest) {
      report.failures.push_back(
          "thread-count digest mismatch: threads=" +
          std::to_string(threads.front()) + " -> " +
          std::to_string(report.digest) + ", threads=" + std::to_string(t) +
          " -> " + std::to_string(digest));
    }
    first = false;
    if (!report.failures.empty()) break;
  }
  return report;
}

serve::ServiceConfig ingest_service_config(const IngestPlan& plan) {
  serve::ServiceConfig cfg;
  cfg.engine.processors = plan.processors;
  cfg.engine.policy = ReweightPolicy::kOmissionIdeal;
  cfg.engine.policing = pfair::PolicingMode::kClamp;
  cfg.engine.record_slot_trace = false;
  cfg.engine.use_ready_queue = true;
  cfg.queue_capacity = 1024;
  return cfg;
}

/// Ingest-path identity: the same derived request load, served in-process
/// and through `plan.producers` shm ingest rings (lossless feeds with
/// malformed-frame injection at plan.malformed_rate), must produce
/// bit-identical response digests; every injected frame must be diagnosed;
/// nothing may be lost.  Injection adds *extra* corrupt frames between the
/// real ones, so the valid request set -- and hence the digest -- is
/// unchanged by construction; a divergence is a mux/wire bug.
void check_ingest(const IngestPlan& plan, std::vector<std::string>& out) {
  serve::LoadGenConfig load_cfg;
  load_cfg.processors = plan.processors;
  load_cfg.tasks = plan.tasks;
  load_cfg.requests = plan.requests;
  load_cfg.seed = plan.load_seed;
  const serve::GeneratedLoad load = serve::generate_load(load_cfg);

  std::uint64_t digest_inproc = 0;
  {
    serve::ReweightService svc{ingest_service_config(plan)};
    for (const auto& t : load.tasks) svc.seed_task(t.name, t.weight, t.rank);
    const int handle = svc.queue().add_producer();
    std::thread producer{[&svc, &load, handle] {
      for (const serve::Request& r : load.requests) {
        if (!svc.queue().push(handle, r)) break;
      }
      svc.queue().producer_done(handle);
    }};
    svc.run_to_completion();
    producer.join();
    digest_inproc = svc.response_digest();
  }

  serve::ReweightService svc{ingest_service_config(plan)};
  for (const auto& t : load.tasks) svc.seed_task(t.name, t.weight, t.rank);
  std::vector<net::ShmRing> rings;
  rings.reserve(static_cast<std::size_t>(plan.producers));
  for (int p = 0; p < plan.producers; ++p) {
    rings.push_back(net::ShmRing::create_anonymous(plan.ring_capacity));
  }
  net::IngestMux mux{svc.queue()};
  for (net::ShmRing& r : rings) mux.add_ring(r);
  std::vector<net::FeedStats> feed_stats(
      static_cast<std::size_t>(plan.producers));
  std::vector<std::thread> feeds;
  feeds.reserve(static_cast<std::size_t>(plan.producers));
  for (int p = 0; p < plan.producers; ++p) {
    feeds.emplace_back([&rings, &feed_stats, &load, &plan, p] {
      net::FeedConfig fc;
      fc.producer_tag = static_cast<std::uint64_t>(p);
      fc.blocking = true;  // identity check runs lossless
      fc.malformed_rate = plan.malformed_rate;
      fc.malformed_seed = plan.load_seed + static_cast<std::uint64_t>(p) + 1;
      feed_stats[static_cast<std::size_t>(p)] = net::feed_ring(
          rings[static_cast<std::size_t>(p)],
          net::partition_requests(load.requests, p, plan.producers), fc);
    });
  }
  std::thread mux_thread{[&mux] { mux.run(); }};
  svc.run_to_completion();
  for (std::thread& t : feeds) t.join();
  mux_thread.join();

  const net::IngestMux::Stats ms = mux.stats();
  std::uint64_t injected = 0;
  for (const net::FeedStats& s : feed_stats) injected += s.injected;
  if (svc.response_digest() != digest_inproc) {
    out.push_back("ingest: ring-path digest mismatch: in-process=" +
                  std::to_string(digest_inproc) + " rings=" +
                  std::to_string(svc.response_digest()) + " (producers=" +
                  std::to_string(plan.producers) + ", ring_capacity=" +
                  std::to_string(plan.ring_capacity) + ")");
  }
  // Lossless feeds count injections only when the corrupt frame actually
  // entered the ring, so the mux must diagnose each one, exactly.
  if (ms.malformed != injected) {
    out.push_back("ingest: malformed-frame accounting: injected " +
                  std::to_string(injected) + ", mux diagnosed " +
                  std::to_string(ms.malformed));
  }
  if (ms.requests != load.requests.size()) {
    out.push_back("ingest: lost requests: fed " +
                  std::to_string(load.requests.size()) + ", admitted " +
                  std::to_string(ms.requests));
  }
  // Data frames block for space in lossless mode; only injected garbage may
  // shed at the ring (it is best-effort by definition and uncounted when it
  // does), so the ring-level shed counter is allowed to be nonzero here.
  std::uint64_t data_shed = 0;
  for (const net::FeedStats& s : feed_stats) data_shed += s.shed;
  if (data_shed != 0) {
    out.push_back("ingest: lossless feed shed " + std::to_string(data_shed) +
                  " data frames");
  }
}

}  // namespace

RunReport run_scenario(const ScenarioSpec& spec, const RunnerConfig& cfg) {
  RunReport report = spec.shard_processors.empty() ? run_single(spec, cfg)
                                                   : run_cluster(spec, cfg);
  if (cfg.ingest.enabled && report.ok()) {
    try {
      check_ingest(cfg.ingest, report.failures);
    } catch (const std::exception& e) {
      report.failures.push_back(std::string("ingest: threw: ") + e.what());
    }
  }
  if (!report.ok() && !cfg.flight_dump_path.empty()) {
    report.flight_dumped = dump_flight(spec, cfg);
  }
  return report;
}

}  // namespace pfr::harness
