/// \file frontier.h
/// \brief Breakdown-frontier explorer: per-configuration binary search for
/// the weight scale at which a cell first misses.
///
/// Classic breakdown-utilization methodology (cf. the real-time-simulator
/// exemplar): fix a task set shape, scale every weight by a factor s, and
/// binary-search the largest s the configuration still schedules without a
/// deadline miss.  Here a *cell* is the cross product
///
///     policy (OI / LJ / hybrid-mag / hybrid-budget)
///   x degradation (none / compress / shed / freeze)
///   x cluster size K (platform fixed at 8 processors total: 1x8, 4x2, 8x1)
///   x fault plan (clean, or a mid-run capacity fault)
///
/// run with policing *off* -- deliberate overload is the whole point, so
/// the admission clamp must not rescue the cell.  Each cell reports its
/// breakdown scale and the corresponding utilization of the 8-processor
/// platform; write_frontier_json() serializes the sweep for EXPERIMENTS.md
/// and CI artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "pfair/types.h"

namespace pfr::harness {

struct FrontierConfig {
  int tasks{24};
  pfair::Slot horizon{96};
  /// Binary-search refinement steps after bracketing.
  int search_iters{10};
  /// Seeds the base weight draw (shared by every cell, so cells are
  /// comparable).
  std::uint64_t seed{2005};
  /// Cluster sizes to sweep; each must divide total_processors.
  std::vector<int> cluster_sizes{1, 4, 8};
  int total_processors{8};
  bool include_faults{true};
  double scale_lo{0.5};
  double scale_hi{4.0};
};

struct FrontierCell {
  std::string policy;       ///< to_string(ReweightPolicy)
  std::string degradation;  ///< to_string(DegradationMode)
  int shards{1};
  bool faults{false};
  /// Largest weight scale that completed with zero misses (0 when even
  /// scale_lo misses).
  double breakdown_scale{0};
  /// Total task weight at the breakdown scale over platform capacity.
  double breakdown_utilization{0};
  std::int64_t trials{0};  ///< runs spent bracketing + refining
};

struct FrontierResult {
  FrontierConfig config;
  std::vector<FrontierCell> cells;
};

/// Sweeps every cell.  `progress` (optional) is called once per finished
/// cell -- the CLI uses it for a live line.
[[nodiscard]] FrontierResult explore_frontier(
    const FrontierConfig& cfg = {},
    const std::function<void(const FrontierCell&)>& progress = {});

/// Serializes a sweep as JSON (stable key order, deterministic output).
void write_frontier_json(const FrontierResult& result, std::ostream& out);

}  // namespace pfr::harness
