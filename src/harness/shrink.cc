#include "harness/shrink.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

namespace pfr::harness {
namespace {

using pfair::ScenarioSpec;
using pfair::Slot;

/// Shared probe state: the budget and the current best (still-failing)
/// spec every pass mutates.
struct Shrinker {
  ScenarioSpec best;
  const FailPredicate& fails;
  int max_probes;
  int probes{0};

  /// Tests a candidate; on still-failing, adopts it as the new best.
  bool accept(ScenarioSpec candidate) {
    if (probes >= max_probes) return false;
    ++probes;
    bool failing = false;
    try {
      failing = fails(candidate);
    } catch (const std::exception&) {
      // A predicate that throws on a malformed candidate just rejects it.
      failing = false;
    }
    if (failing) best = std::move(candidate);
    return failing;
  }

  [[nodiscard]] bool exhausted() const { return probes >= max_probes; }

  /// ddmin-style chunked removal over best.*member: halves first, then
  /// singles.  Returns true if anything was removed.
  template <typename T>
  bool reduce(std::vector<T> ScenarioSpec::* member) {
    bool any = false;
    for (std::size_t chunk = std::max<std::size_t>(
             (best.*member).size() / 2, 1);
         ; chunk /= 2) {
      std::size_t i = 0;
      while (i < (best.*member).size() && !exhausted()) {
        ScenarioSpec candidate = best;
        auto& vec = candidate.*member;
        const std::size_t end = std::min(i + chunk, vec.size());
        vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i),
                  vec.begin() + static_cast<std::ptrdiff_t>(end));
        if (accept(std::move(candidate))) {
          any = true;  // same i now names the next chunk
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
    return any;
  }
};

/// Removes the named tasks and every directive referencing them.
ScenarioSpec without_tasks(const ScenarioSpec& spec,
                           const std::unordered_set<std::string>& names) {
  ScenarioSpec out = spec;
  std::erase_if(out.tasks, [&](const ScenarioSpec::TaskSpec& t) {
    return names.count(t.name) > 0;
  });
  std::erase_if(out.events, [&](const ScenarioSpec::EventSpec& e) {
    return names.count(e.task) > 0;
  });
  std::erase_if(out.faults, [&](const ScenarioSpec::FaultSpec& f) {
    return !f.task.empty() && names.count(f.task) > 0;
  });
  std::erase_if(out.migrations, [&](const ScenarioSpec::MigrateSpec& m) {
    return names.count(m.task) > 0;
  });
  return out;
}

bool reduce_tasks(Shrinker& sh) {
  bool any = false;
  for (std::size_t chunk =
           std::max<std::size_t>(sh.best.tasks.size() / 2, 1);
       ; chunk /= 2) {
    std::size_t i = 0;
    while (i < sh.best.tasks.size() && !sh.exhausted()) {
      std::unordered_set<std::string> names;
      const std::size_t end = std::min(i + chunk, sh.best.tasks.size());
      for (std::size_t j = i; j < end; ++j) {
        names.insert(sh.best.tasks[j].name);
      }
      if (sh.accept(without_tasks(sh.best, names))) {
        any = true;
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return any;
}

/// Clears per-task decoration (separations, absences, rank, late join)
/// one field at a time; each removal must preserve the failure.
bool simplify_tasks(Shrinker& sh) {
  bool any = false;
  for (std::size_t i = 0; i < sh.best.tasks.size() && !sh.exhausted(); ++i) {
    const auto try_edit = [&](auto edit) {
      ScenarioSpec candidate = sh.best;
      edit(candidate.tasks[i]);
      if (sh.accept(std::move(candidate))) any = true;
    };
    if (!sh.best.tasks[i].separations.empty()) {
      try_edit([](ScenarioSpec::TaskSpec& t) { t.separations.clear(); });
    }
    if (!sh.best.tasks[i].absences.empty()) {
      try_edit([](ScenarioSpec::TaskSpec& t) { t.absences.clear(); });
    }
    if (sh.best.tasks[i].rank != 0) {
      try_edit([](ScenarioSpec::TaskSpec& t) { t.rank = 0; });
    }
    if (sh.best.tasks[i].join != 0) {
      try_edit([](ScenarioSpec::TaskSpec& t) { t.join = 0; });
    }
  }
  return any;
}

bool simplify_config(Shrinker& sh) {
  bool any = false;
  if (sh.best.rebalance.enabled) {
    ScenarioSpec candidate = sh.best;
    candidate.rebalance = ScenarioSpec::RebalanceSpec{};
    if (sh.accept(std::move(candidate))) any = true;
  }
  if (!sh.best.placement.empty()) {
    ScenarioSpec candidate = sh.best;
    candidate.placement.clear();
    if (sh.accept(std::move(candidate))) any = true;
  }
  return any;
}

/// Binary search for the earliest still-failing horizon.  Best effort: a
/// failure need not be monotone in the horizon, but in practice the first
/// bad slot is, and a non-monotone miss just leaves the horizon larger.
bool shrink_horizon(Shrinker& sh) {
  Slot lo = 1;
  Slot hi = sh.best.horizon;
  bool any = false;
  while (lo < hi && !sh.exhausted()) {
    const Slot mid = lo + (hi - lo) / 2;
    ScenarioSpec candidate = sh.best;
    candidate.horizon = mid;
    if (sh.accept(std::move(candidate))) {
      hi = mid;
      any = true;
    } else {
      lo = mid + 1;
    }
  }
  return any;
}

}  // namespace

ShrinkResult shrink_scenario(ScenarioSpec spec, const FailPredicate& fails,
                             int max_probes) {
  if (!fails(spec)) {
    throw std::invalid_argument(
        "shrink_scenario: the input scenario does not fail the predicate");
  }
  Shrinker sh{std::move(spec), fails, max_probes};

  ShrinkResult result;
  for (;;) {
    bool progressed = false;
    progressed |= sh.reduce(&ScenarioSpec::events);
    progressed |= sh.reduce(&ScenarioSpec::faults);
    progressed |= sh.reduce(&ScenarioSpec::migrations);
    progressed |= reduce_tasks(sh);
    progressed |= simplify_tasks(sh);
    progressed |= simplify_config(sh);
    progressed |= shrink_horizon(sh);
    ++result.rounds;
    if (!progressed || sh.exhausted()) break;
  }
  result.spec = std::move(sh.best);
  result.text = pfair::render_scenario(result.spec);
  result.probes = sh.probes;
  return result;
}

}  // namespace pfr::harness
