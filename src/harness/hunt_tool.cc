/// \file hunt_tool.cc
/// \brief pfair-hunt: the chaos-harness CLI.
///
///   pfair-hunt --seed=7 --count=2000              # randomized hunt
///   pfair-hunt --seed=7 --count=2000 --artifacts=hunt-out
///   pfair-hunt --replay=fail.scn                  # re-run one scenario
///   pfair-hunt --shrink=fail.scn                  # minimize a failing .scn
///   pfair-hunt --frontier=results/breakdown_frontier.json [--quick]
///
/// Hunt mode generates `count` seeded scenarios, runs each through the
/// fault-aware PropertyRunner, and for every failure writes a
/// self-contained repro directory under --artifacts:
///
///   fail-<seed>-<index>/scenario.scn   the generated scenario
///   fail-<seed>-<index>/min.scn        auto-shrunk minimal reproduction
///   fail-<seed>-<index>/flight.jsonl   flight-recorder ring at the failure
///   fail-<seed>-<index>/repro.txt      the failure list + replay command
///
/// Exit status: 0 all scenarios passed, 1 failures found (artifacts
/// written), 2 usage error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/frontier.h"
#include "harness/property_runner.h"
#include "harness/scenario_gen.h"
#include "harness/shrink.h"
#include "util/cli.h"

namespace {

using pfr::harness::RunnerConfig;
using pfr::harness::RunReport;

/// Coarse failure class used to keep the shrinker minimizing *the same*
/// failure (a candidate that fails differently -- e.g. stops building --
/// is rejected, not adopted).
std::string classify(const RunReport& report) {
  if (report.ok()) return "";
  const std::string& first = report.failures.front();
  if (first.rfind("build failed", 0) == 0) return "build";
  if (first.find("threw") != std::string::npos) return "throw";
  if (first.find("verify:") != std::string::npos) return "verify";
  if (first.find("validate-mode violations") != std::string::npos) {
    return "violations";
  }
  if (first.rfind("ingest:", 0) == 0) return "ingest";
  if (first.find("drift bound") != std::string::npos) return "drift";
  if (first.find("telemetry mismatch") != std::string::npos) {
    return "telemetry";
  }
  if (first.find("digest mismatch") != std::string::npos) return "digest";
  return "other";
}

int replay(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  const pfr::pfair::ScenarioSpec spec = pfr::pfair::parse_scenario(in, path);
  const RunReport report = pfr::harness::run_scenario(spec);
  std::cout << path << ": " << (report.cluster ? "cluster" : "engine")
            << " slots=" << report.slots << " misses=" << report.misses
            << " faults=" << report.faults
            << " migrations=" << report.migrations << " digest=0x" << std::hex
            << report.digest << std::dec << "\n";
  for (const std::string& f : report.failures) {
    std::cout << "  FAIL " << f << "\n";
  }
  if (report.ok()) std::cout << "  all properties held\n";
  return report.ok() ? 0 : 1;
}

int shrink_file(const std::string& path, int max_probes) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  const pfr::pfair::ScenarioSpec spec = pfr::pfair::parse_scenario(in, path);
  const RunnerConfig probe_cfg;
  const RunReport original = pfr::harness::run_scenario(spec, probe_cfg);
  if (original.ok()) {
    std::cerr << path << ": scenario passes; nothing to shrink\n";
    return 2;
  }
  const std::string category = classify(original);
  const auto fails = [&](const pfr::pfair::ScenarioSpec& candidate) {
    return classify(pfr::harness::run_scenario(candidate, probe_cfg)) ==
           category;
  };
  const pfr::harness::ShrinkResult result =
      pfr::harness::shrink_scenario(spec, fails, max_probes);
  std::cerr << "shrunk to " << result.spec.tasks.size() << " tasks, "
            << result.spec.events.size() << " events, "
            << result.spec.faults.size() << " faults, horizon "
            << result.spec.horizon << " (" << result.probes << " probes, "
            << result.rounds << " rounds)\n";
  std::cout << result.text;
  return 0;
}

int frontier(const std::string& path, bool quick) {
  pfr::harness::FrontierConfig cfg;
  if (quick) {
    cfg.cluster_sizes = {1, 4};
    cfg.search_iters = 5;
    cfg.horizon = 64;
  }
  const pfr::harness::FrontierResult result = pfr::harness::explore_frontier(
      cfg, [](const pfr::harness::FrontierCell& cell) {
        std::cerr << cell.policy << " x " << cell.degradation << " x K="
                  << cell.shards << (cell.faults ? " +faults" : "")
                  << ": breakdown scale " << cell.breakdown_scale << " (util "
                  << cell.breakdown_utilization << ", " << cell.trials
                  << " trials)\n";
      });
  std::ofstream out{path};
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  pfr::harness::write_frontier_json(result, out);
  std::cerr << result.cells.size() << " cells -> " << path << "\n";
  return 0;
}

int hunt(std::uint64_t seed, std::int64_t count, const std::string& artifacts,
         bool do_shrink, int max_probes, bool no_ingest) {
  namespace fs = std::filesystem;
  std::cerr << "hunting " << count << " scenarios from seed " << seed
            << " (replay any failure with --seed=" << seed << ")\n";
  std::int64_t failures = 0;
  std::int64_t cluster_runs = 0;
  std::int64_t ingest_runs = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const pfr::harness::GeneratedScenario gen =
        pfr::harness::generate_scenario(seed, static_cast<std::uint64_t>(i));
    RunnerConfig cfg;
    if (!no_ingest) cfg.ingest = gen.ingest;
    if (cfg.ingest.enabled) ++ingest_runs;
    const RunReport report = pfr::harness::run_scenario(gen.spec, cfg);
    if (report.cluster) ++cluster_runs;
    if (report.ok()) {
      if ((i + 1) % 250 == 0) {
        std::cerr << "  " << (i + 1) << "/" << count << " ok (" << cluster_runs
                  << " cluster)\n";
      }
      continue;
    }
    ++failures;
    const fs::path dir =
        fs::path{artifacts} /
        ("fail-" + std::to_string(seed) + "-" + std::to_string(i));
    fs::create_directories(dir);
    std::ofstream{dir / "scenario.scn"} << gen.text;

    const std::string category = classify(report);
    std::cerr << "FAIL seed=" << seed << " index=" << i << " [" << category
              << "] -> " << dir.string() << "\n";
    for (const std::string& f : report.failures) {
      std::cerr << "  " << f << "\n";
    }

    // Flight-recorder dump of the failing run.
    RunnerConfig dump_cfg;
    dump_cfg.flight_dump_path = (dir / "flight.jsonl").string();
    (void)pfr::harness::run_scenario(gen.spec, dump_cfg);

    std::string min_text = gen.text;
    // An ingest failure is a property of the (seed, index) plan, not of the
    // scenario text -- shrinking the .scn cannot minimize it.
    if (do_shrink && category != "ingest") {
      const RunnerConfig probe_cfg;  // spec-only probes: no ingest replay
      const auto fails = [&](const pfr::pfair::ScenarioSpec& candidate) {
        return classify(pfr::harness::run_scenario(candidate, probe_cfg)) ==
               category;
      };
      try {
        const pfr::harness::ShrinkResult min =
            pfr::harness::shrink_scenario(gen.spec, fails, max_probes);
        min_text = min.text;
        std::cerr << "  shrunk to " << min.spec.tasks.size() << " tasks / "
                  << min.spec.events.size() << " events / "
                  << min.spec.faults.size() << " faults, horizon "
                  << min.spec.horizon << "\n";
      } catch (const std::exception& e) {
        std::cerr << "  shrink failed: " << e.what() << "\n";
      }
    }
    std::ofstream{dir / "min.scn"} << min_text;

    std::ostringstream repro;
    repro << "# pfair-hunt failure seed=" << seed << " index=" << i << " ["
          << category << "]\n";
    for (const std::string& f : report.failures) repro << "# " << f << "\n";
    repro << "pfair-hunt --replay=" << (dir / "min.scn").string() << "\n";
    std::ofstream{dir / "repro.txt"} << repro.str();
  }
  std::cerr << count << " scenarios, " << failures << " failures ("
            << cluster_runs << " cluster runs, " << ingest_runs
            << " ingest-checked)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const pfr::CliArgs cli{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::int64_t count = cli.get_int("count", 100);
  const std::string artifacts = cli.get_string("artifacts", "hunt-artifacts");
  const std::string replay_file = cli.get_string("replay", "");
  const std::string shrink_target = cli.get_string("shrink", "");
  const std::string frontier_path = cli.get_string("frontier", "");
  const bool quick = cli.get_bool("quick");
  const bool no_shrink = cli.get_bool("no-shrink");
  const bool no_ingest = cli.get_bool("no-ingest");
  const int max_probes = static_cast<int>(cli.get_int("max-probes", 4000));
  if (cli.error()) {
    std::cerr << "argument error: " << *cli.error() << "\n";
    return 2;
  }
  if (!cli.unknown_flags().empty()) {
    std::cerr << "unknown flag: --" << cli.unknown_flags().front() << "\n";
    return 2;
  }

  try {
    if (!replay_file.empty()) return replay(replay_file);
    if (!shrink_target.empty()) return shrink_file(shrink_target, max_probes);
    if (!frontier_path.empty()) return frontier(frontier_path, quick);
    return hunt(seed, count, artifacts, !no_shrink, max_probes, no_ingest);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
