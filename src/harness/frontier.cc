#include "harness/frontier.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <ostream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "pfair/engine.h"
#include "pfair/fault.h"
#include "util/rng.h"

namespace pfr::harness {
namespace {

using pfair::DegradationMode;
using pfair::EngineConfig;
using pfair::ReweightPolicy;
using pfair::Slot;

/// Base weights live on the 1/120 grid; scaling rounds on that grid and
/// clamps at the light-task ceiling 1/2 (num <= 60).
constexpr std::int64_t kDen = 120;
constexpr std::int64_t kMaxNum = kDen / 2;

std::vector<std::int64_t> base_numerators(const FrontierConfig& cfg) {
  Xoshiro256 rng = Xoshiro256::for_stream(cfg.seed, 0);
  std::vector<std::int64_t> nums;
  nums.reserve(static_cast<std::size_t>(cfg.tasks));
  for (int i = 0; i < cfg.tasks; ++i) {
    nums.push_back(rng.uniform_int(6, 30));  // weights in [0.05, 0.25]
  }
  return nums;
}

std::int64_t scaled_num(std::int64_t base, double scale) {
  const auto n = static_cast<std::int64_t>(std::llround(
      static_cast<double>(base) * scale));
  return std::clamp<std::int64_t>(n, 1, kMaxNum);
}

struct Cell {
  ReweightPolicy policy;
  double hybrid_threshold{2.0};
  int hybrid_budget{1};
  DegradationMode degradation;
  int shards;
  bool faults;
};

EngineConfig cell_engine_config(const Cell& cell, int processors) {
  EngineConfig ec;
  ec.processors = processors;
  ec.policy = cell.policy;
  ec.hybrid_magnitude_threshold = cell.hybrid_threshold;
  ec.hybrid_budget_per_slot = cell.hybrid_budget;
  // Deliberate overload: the admission clamp must not rescue the cell, and
  // a (W) violation is the expected state, not a bug to throw on.
  ec.policing = pfair::PolicingMode::kOff;
  ec.validate = false;
  ec.degradation = cell.degradation;
  ec.record_slot_trace = false;
  return ec;
}

pfair::FaultPlan cell_fault_plan(int shard_procs, Slot horizon) {
  pfair::FaultPlan plan;
  if (shard_procs >= 2) {
    // Lose the top processor for the middle half of the run.
    plan.crash(shard_procs - 1, horizon / 4)
        .recover(shard_procs - 1, (3 * horizon) / 4);
  } else {
    // A single-processor shard cannot crash without dying entirely; steal
    // three quanta instead.
    plan.overrun(0, horizon / 4)
        .overrun(0, horizon / 4 + 1)
        .overrun(0, horizon / 4 + 2);
  }
  return plan;
}

/// One trial: does the cell, at this weight scale, finish the horizon with
/// zero misses?  A throw counts as broken.
bool trial_misses(const FrontierConfig& cfg, const Cell& cell,
                  const std::vector<std::int64_t>& base, double scale) {
  const int per_shard = cfg.total_processors / cell.shards;
  try {
    if (cell.shards == 1) {
      pfair::Engine eng{cell_engine_config(cell, per_shard)};
      for (std::size_t i = 0; i < base.size(); ++i) {
        eng.add_task(Rational{scaled_num(base[i], scale), kDen}, 0,
                     "f" + std::to_string(i));
      }
      if (cell.faults) eng.set_fault_plan(cell_fault_plan(per_shard, cfg.horizon));
      eng.run_until(cfg.horizon);
      return !eng.misses().empty();
    }
    cluster::ClusterConfig ccfg;
    for (int k = 0; k < cell.shards; ++k) {
      ccfg.shards.push_back(cell_engine_config(cell, per_shard));
    }
    cluster::Cluster cl{std::move(ccfg)};
    for (std::size_t i = 0; i < base.size(); ++i) {
      // Round-robin forced placement: placement policies reject overloaded
      // shards, but overload is the state under study.
      cl.admit("f" + std::to_string(i),
               Rational{scaled_num(base[i], scale), kDen}, 0,
               static_cast<int>(i) % cell.shards, 0);
    }
    if (cell.faults) {
      cl.shard(0).set_fault_plan(cell_fault_plan(per_shard, cfg.horizon));
    }
    cl.run_until(cfg.horizon);
    for (int k = 0; k < cell.shards; ++k) {
      if (!cl.shard(k).misses().empty()) return true;
    }
    return false;
  } catch (const std::exception&) {
    return true;
  }
}

double utilization_at(const FrontierConfig& cfg,
                      const std::vector<std::int64_t>& base, double scale) {
  std::int64_t total = 0;
  for (const std::int64_t b : base) total += scaled_num(b, scale);
  return static_cast<double>(total) /
         (static_cast<double>(kDen) * cfg.total_processors);
}

}  // namespace

FrontierResult explore_frontier(
    const FrontierConfig& cfg,
    const std::function<void(const FrontierCell&)>& progress) {
  const std::vector<std::int64_t> base = base_numerators(cfg);
  const Cell policies[] = {
      {ReweightPolicy::kOmissionIdeal, 2.0, 1, DegradationMode::kNone, 1,
       false},
      {ReweightPolicy::kLeaveJoin, 2.0, 1, DegradationMode::kNone, 1, false},
      {ReweightPolicy::kHybridMagnitude, 2.0, 1, DegradationMode::kNone, 1,
       false},
      {ReweightPolicy::kHybridBudget, 2.0, 1, DegradationMode::kNone, 1,
       false},
  };
  constexpr DegradationMode kDegradations[] = {
      DegradationMode::kNone, DegradationMode::kCompress,
      DegradationMode::kShed, DegradationMode::kFreeze};

  FrontierResult result;
  result.config = cfg;
  for (const Cell& base_cell : policies) {
    for (const DegradationMode degradation : kDegradations) {
      for (const int shards : cfg.cluster_sizes) {
        for (const bool faults : {false, true}) {
          if (faults && !cfg.include_faults) continue;
          Cell cell = base_cell;
          cell.degradation = degradation;
          cell.shards = shards;
          cell.faults = faults;

          FrontierCell out;
          out.policy = pfair::to_string(cell.policy);
          out.degradation = pfair::to_string(degradation);
          out.shards = shards;
          out.faults = faults;

          double lo = cfg.scale_lo;
          double hi = cfg.scale_hi;
          std::int64_t trials = 0;
          const auto broken = [&](double s) {
            ++trials;
            return trial_misses(cfg, cell, base, s);
          };
          if (broken(lo)) {
            out.breakdown_scale = 0;  // even the floor misses
          } else if (!broken(hi)) {
            out.breakdown_scale = hi;  // never misses inside the bracket
          } else {
            for (int i = 0; i < cfg.search_iters; ++i) {
              const double mid = (lo + hi) / 2;
              (broken(mid) ? hi : lo) = mid;
            }
            out.breakdown_scale = lo;
          }
          if (out.breakdown_scale > 0) {
            out.breakdown_utilization =
                utilization_at(cfg, base, out.breakdown_scale);
          }
          out.trials = trials;
          if (progress) progress(out);
          result.cells.push_back(std::move(out));
        }
      }
    }
  }
  return result;
}

void write_frontier_json(const FrontierResult& result, std::ostream& out) {
  const FrontierConfig& cfg = result.config;
  out << "{\n"
      << "  \"total_processors\": " << cfg.total_processors << ",\n"
      << "  \"tasks\": " << cfg.tasks << ",\n"
      << "  \"horizon\": " << cfg.horizon << ",\n"
      << "  \"seed\": " << cfg.seed << ",\n"
      << "  \"scale_lo\": " << cfg.scale_lo << ",\n"
      << "  \"scale_hi\": " << cfg.scale_hi << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const FrontierCell& c = result.cells[i];
    out << "    {\"policy\": \"" << c.policy << "\", \"degradation\": \""
        << c.degradation << "\", \"shards\": " << c.shards
        << ", \"faults\": " << (c.faults ? "true" : "false")
        << ", \"breakdown_scale\": " << c.breakdown_scale
        << ", \"breakdown_utilization\": " << c.breakdown_utilization
        << ", \"trials\": " << c.trials << "}"
        << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace pfr::harness
