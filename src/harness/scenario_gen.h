/// \file scenario_gen.h
/// \brief Seeded generation of valid-by-construction randomized cluster
/// scenarios.
///
/// ScenarioGen is the front half of the chaos harness: from a (seed, index)
/// pair it derives an independent xoshiro256++ stream and emits one
/// scenario sweeping the whole feature cross-product -- reweighting policy
/// (OI / LJ / both hybrids), policing, fault plans (crash/recover pairs,
/// quantum overruns, dropped and delayed requests), degradation modes
/// (compress / shed / freeze), admission pressure (late joins, reweight
/// storms near capacity), and, for cluster scenarios, shards, placement,
/// scripted migrations, and the rebalancer.
///
/// Every scenario is produced *as grammar text* (render_scenario over a
/// constructed ScenarioSpec) and then re-parsed, so each artifact is a
/// replayable `.scn` file and generator validity is structural: whatever
/// comes out of generate_scenario() parses cleanly and round-trips through
/// the scenario grammar.
///
/// Validity by construction (the generator's contract with PropertyRunner):
///   * total nominal weight fits the platform (single engine: <= ~0.9 M;
///     cluster: below the pigeonhole bound sum(M_k) - K/2, so placement can
///     never reject a light task);
///   * heavy tasks appear only in single-engine scenarios and never receive
///     reweight / leave / migrate events (the paper defers heavy
///     reweighting);
///   * crash faults never take a shard's last processor down concurrently,
///     and every crash gets a matching recover attempt (possibly past the
///     horizon);
///   * policing is always clamp or reject -- `policing off` is reserved for
///     deliberate-overload experiments (the breakdown frontier).
#pragma once

#include <cstdint>
#include <string>

#include "pfair/scenario_io.h"

namespace pfr::harness {

/// Knobs for the scenario space; the defaults are the chaos-hunt envelope.
struct GenConfig {
  int min_tasks{2};
  int max_tasks{24};
  pfair::Slot min_horizon{32};
  pfair::Slot max_horizon{192};
  /// Per-engine (or per-shard) processor cap.
  int max_processors{8};
  bool allow_cluster{true};
  bool allow_faults{true};
  bool allow_heavy{true};

  /// Probability each task carries an IS separation (delayed release gap).
  /// The default matches the historical hunt envelope; raise it to stress
  /// the Thm-5 displacement ledger.
  double separation_fraction{0.1};
  /// When positive, this fraction of heavy draws puts the heavy task's
  /// weight a hair under 1 on a 2^31 grid, so the group-deadline cascade
  /// overflows 64-bit window math within a few subtasks and exercises the
  /// saturate-and-degrade path instead of aborting.  Zero (the default)
  /// leaves the historical scenario streams byte-identical.
  double saturation_fraction{0.0};

  /// Elastic-cluster chaos (src/cluster/elastic): this fraction of
  /// *cluster* scenarios is made elastic -- heterogeneous shard speed
  /// factors, the `elastic` capacity-lending directive, and (per
  /// elastic_skew) a mid-run reweight burst that concentrates load on one
  /// placed shard so the controller has something to correct.  All elastic
  /// draws come from a salted RNG stream taken *after* the base scenario,
  /// so the base draws for a (seed, index) match pre-elastic hunts.
  double elastic_fraction{0.30};
  /// Largest heterogeneous speed factor a shard may draw (1 disables
  /// heterogeneity; speeds multiply the shard's capacity units).
  int max_shard_speed{3};
  /// Probability an elastic scenario also gets a load-skew burst.
  double elastic_skew{0.5};
  /// Control-period envelope for the `elastic` directive.
  int min_control_period{8};
  int max_control_period{32};

  /// Ingest-path chaos (the net/ front door): this fraction of scenarios
  /// also replays a derived request load through shm ingest rings --
  /// in-process versus ringed delivery must produce bit-identical response
  /// digests, and every injected malformed frame must be detected.  The
  /// remaining knobs are the envelope the per-scenario plan is drawn from.
  double ingest_fraction{0.25};
  int max_ingest_producers{4};
  std::size_t min_ingest_ring{16};
  std::size_t max_ingest_ring{128};
  double max_ingest_malformed_rate{0.15};
};

/// Per-scenario ingest plan (see GenConfig::ingest_fraction).  Drawn from
/// an RNG stream independent of the scenario draw, so enabling ingest
/// chaos never perturbs previously hunted scenario text.  The plan is not
/// part of the `.scn` artifact: it is reproducible from (seed, index, cfg)
/// alone.
struct IngestPlan {
  bool enabled{false};
  int producers{2};
  std::size_t ring_capacity{64};
  double malformed_rate{0.0};
  std::uint64_t load_seed{1};
  std::uint64_t requests{512};
  int tasks{8};
  int processors{4};
};

/// One generated scenario: the replayable text artifact and its parse.
struct GeneratedScenario {
  std::string text;           ///< canonical `.scn` text (render_scenario)
  pfair::ScenarioSpec spec;   ///< parse of `text`
  std::uint64_t seed{0};
  std::uint64_t index{0};
  IngestPlan ingest;          ///< net/-path plan (often disabled)
};

/// Generates scenario `index` of stream `seed`.  Deterministic: the same
/// (seed, index, cfg) yields byte-identical text on every machine.
[[nodiscard]] GeneratedScenario generate_scenario(std::uint64_t seed,
                                                  std::uint64_t index,
                                                  const GenConfig& cfg = {});

}  // namespace pfr::harness
