/// \file shrink.h
/// \brief Delta-debugging minimizer for failing scenarios.
///
/// Given a scenario and a predicate "does this still fail?", the shrinker
/// greedily removes structure while the predicate keeps holding: events,
/// faults, migrations, whole tasks (with every directive that references
/// them), per-task decorations (separations, absences, ranks, late joins),
/// the rebalancer, and finally the horizon (binary search for the earliest
/// failing slot).  Chunked removal first (ddmin-style halves), then
/// singles, looped to a fixed point, so the result cannot be shrunk
/// further by any single pass.
///
/// Determinism: the pass order is fixed and the predicate is assumed pure,
/// so the same (spec, predicate) always minimizes to the same scenario,
/// and re-shrinking a minimized scenario returns it unchanged (idempotence
/// -- both are tested).  The probe budget caps predicate invocations; on
/// exhaustion the best spec so far is returned.
#pragma once

#include <functional>
#include <string>

#include "pfair/scenario_io.h"

namespace pfr::harness {

/// True iff the candidate scenario still exhibits the failure being
/// minimized.  Must be pure (same spec -> same verdict).
using FailPredicate = std::function<bool(const pfair::ScenarioSpec&)>;

struct ShrinkResult {
  pfair::ScenarioSpec spec;  ///< smallest failing scenario found
  std::string text;          ///< canonical render of `spec`
  int rounds{0};             ///< fixed-point iterations
  int probes{0};             ///< predicate invocations spent
};

/// Minimizes `spec` under `fails`.  Requires fails(spec) == true (throws
/// std::invalid_argument otherwise -- minimizing a passing scenario is a
/// caller bug).  `max_probes` bounds predicate calls.
[[nodiscard]] ShrinkResult shrink_scenario(pfair::ScenarioSpec spec,
                                           const FailPredicate& fails,
                                           int max_probes = 4000);

}  // namespace pfr::harness
