/// \file property_runner.h
/// \brief Executes one scenario through the Engine/Cluster and checks the
/// fault-aware correctness properties the chaos harness hunts with.
///
/// The runner is deliberately oracle-first: it trusts the independent
/// post-hoc verifier (pfair/verify.h), which already knows when a property
/// is suspended (Theorem 2 only binds policed PD2-OI runs with no capacity
/// fault), and layers on the checks the verifier cannot see:
///
///   * per-theorem drift bounds -- Thm. 5's per-event |drift| <= 2 (scaled
///     by folded initiations) on pure single-engine PD2-OI runs.  Tasks
///     with IS separations are checked too: the engine ledgers the
///     separation displacement (I_PS accruing wt through the gap, which the
///     theorem does not charge to the reweighting event) in each drift
///     sample, and the check subtracts it before applying the bound;
///   * digest determinism -- single engine: DispatchMode::kScan vs the
///     incremental fast path must be bit-identical; cluster: the schedule
///     digest must agree across worker-thread counts (default 1/2/8);
///   * telemetry-counter consistency -- the live TelemetryShard counters
///     must equal the engine's own EngineStats at end of run;
///   * liveness of the run itself -- an engine that throws (validate-mode
///     invariant, reweighting a heavy task, ...) is a finding, not a crash
///     of the harness.
///
/// On any failure the runner can re-execute the scenario with a
/// FlightRecorder attached and dump the last-N-events ring as JSONL next to
/// the failing `.scn`, so every hunt artifact is a self-contained repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario_gen.h"
#include "pfair/scenario_io.h"

namespace pfr::harness {

struct RunnerConfig {
  /// Single engine: also run under DispatchMode::kScan and compare digests.
  bool check_cross_mode_digest{true};
  /// Cluster: worker-thread counts whose digests must all agree.
  std::vector<std::size_t> thread_counts{1, 2, 8};
  bool check_telemetry{true};
  bool check_drift_bound{true};
  /// Single engine: re-run with the SoA fast-accrual path armed (validate
  /// off, rational dispatch oracle on) and with the pre-SoA per-subtask
  /// recursion (legacy_accrual), requiring bit-identical digests and exact
  /// ideal-schedule totals across all three.
  bool check_accrual_digest{true};
  /// When non-empty and the run fails, re-run with a FlightRecorder and
  /// dump the ring here (JSONL, pfair-trace compatible).
  std::string flight_dump_path;
  /// Ring capacity for the failure dump.
  std::size_t flight_capacity{512};
  /// Ingest-path property (disabled by default): replay a deterministic
  /// request load in-process and through shm ingest rings -- with
  /// malformed-frame injection at plan.malformed_rate -- and require (a)
  /// bit-identical response digests, (b) every injected frame detected,
  /// (c) zero lost requests.  The hunt copies each scenario's generated
  /// plan in here.
  IngestPlan ingest;
};

/// Outcome of one scenario execution.
struct RunReport {
  std::vector<std::string> failures;  ///< empty = all properties held
  std::uint64_t digest{0};            ///< schedule digest of the primary run
  pfair::Slot slots{0};
  std::int64_t misses{0};
  int violations{0};
  std::int64_t faults{0};             ///< injected faults applied
  std::int64_t migrations{0};         ///< cluster: completed migrations
  bool cluster{false};
  bool flight_dumped{false};
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs `spec` (single engine or cluster, decided by its `shard` lines)
/// and checks every applicable property.  Never throws on a *scenario*
/// failure -- those land in RunReport::failures.
[[nodiscard]] RunReport run_scenario(const pfair::ScenarioSpec& spec,
                                     const RunnerConfig& cfg = {});

}  // namespace pfr::harness
