/// \file jsonl_sink.h
/// \brief JSONL exporter: one flat JSON object per TraceEvent, one per line.
///
/// The stream is written incrementally (nothing is buffered beyond the
/// ostream), so a trace of a crashed run is still readable up to the crash.
/// `pfair-trace` and the golden tests read this format back via
/// obs::parse_flat_json_object.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/sink.h"

namespace pfr::obs {

class JsonlSink final : public EventSink {
 public:
  /// Writes to a stream owned by the caller (kept alive while attached).
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing.  Throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path);

  void on_event(const TraceEvent& event) override;
  void flush() override { out_->flush(); }

  [[nodiscard]] std::int64_t events_written() const noexcept {
    return events_written_;
  }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::int64_t events_written_{0};
};

/// Serializes one event to its JSONL line (no trailing newline); exposed
/// for tests and alternative transports.
[[nodiscard]] std::string to_jsonl(const TraceEvent& event);

}  // namespace pfr::obs
