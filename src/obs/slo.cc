#include "obs/slo.h"

#include <cmath>
#include <limits>

namespace pfr::obs {

SloTracker::SloTracker(SloConfig cfg) : cfg_(cfg) {
  if (cfg_.window < static_cast<pfair::Slot>(kSubWindows)) {
    cfg_.window = static_cast<pfair::Slot>(kSubWindows);
  }
  sub_len_ = cfg_.window / static_cast<pfair::Slot>(kSubWindows);
}

void SloTracker::advance(pfair::Slot now) {
  // Rotate zero or more sub-windows so the live one covers `now`.  A long
  // idle gap clears the whole ring in kSubWindows steps, not one per slot.
  std::size_t rotations = 0;
  while (now >= current_start_ + sub_len_ && rotations < kSubWindows) {
    current_start_ += sub_len_;
    live_ = (live_ + 1) % kSubWindows;
    subs_[live_].clear();
    ++rotations;
  }
  if (now >= current_start_ + sub_len_) {  // still behind: jump
    current_start_ = now - (now % sub_len_);
  }
}

void SloTracker::observe_latency(pfair::Slot due, pfair::Slot enacted) {
  double latency = static_cast<double>(enacted - due);
  if (latency < 0) latency = 0;
  std::size_t i = 0;
  while (i < kTelLatencyBounds.size() && latency > kTelLatencyBounds[i]) ++i;
  ++subs_[live_].latency[i];
  ++subs_[live_].enactments;
}

void SloTracker::on_admitted() { ++subs_[live_].admitted; }
void SloTracker::on_shed() { ++subs_[live_].shed; }
void SloTracker::on_rejected() { ++subs_[live_].rejected; }

SloState SloTracker::score(double value, double target) const noexcept {
  if (target <= 0) return SloState::kOk;  // dimension disabled
  if (value > target) return SloState::kBreach;
  if (value > target * cfg_.warn_fraction) return SloState::kWarn;
  return SloState::kOk;
}

SloTracker::Readout SloTracker::read() const {
  // Sum the ring: every sub-window is within the rolling window by
  // construction (rotation cleared anything older).
  std::array<std::int64_t, kTelHistBuckets> latency{};
  Readout out;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  for (const SubWindow& sw : subs_) {
    for (std::size_t i = 0; i < kTelHistBuckets; ++i) {
      latency[i] += sw.latency[i];
    }
    out.window_enactments += sw.enactments;
    admitted += sw.admitted;
    rejected += sw.rejected;
    shed += sw.shed;
  }

  const auto quantile = [&latency, &out](double q) -> double {
    if (out.window_enactments == 0) return 0.0;
    auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(out.window_enactments)));
    if (rank < 1) rank = 1;
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < kTelLatencyBounds.size(); ++i) {
      seen += latency[i];
      if (seen >= rank) return kTelLatencyBounds[i];
    }
    return std::numeric_limits<double>::infinity();
  };
  out.p50_latency_slots = quantile(0.50);
  out.p99_latency_slots = quantile(0.99);

  out.window_offered = admitted + rejected + shed;
  out.shed_rate = out.window_offered > 0
                      ? static_cast<double>(shed) /
                            static_cast<double>(out.window_offered)
                      : 0.0;
  out.drift_abs = drift_;

  out.latency = score(out.p99_latency_slots, cfg_.p99_target_slots);
  out.shed = score(out.shed_rate, cfg_.shed_rate_target);
  out.drift = score(out.drift_abs, cfg_.drift_target);
  return out;
}

}  // namespace pfr::obs
