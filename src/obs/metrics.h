/// \file metrics.h
/// \brief MetricsRegistry: named counters, gauges, fixed-bucket histograms
/// and accumulating timers, with RAII ScopedTimer phase timing.
///
/// The registry is the quantitative half of the observability layer: the
/// engine's seven per-slot phases are bracketed by ScopedTimers, and
/// Engine::export_metrics mirrors the EngineStats counters into it, so one
/// JSON dump answers both "where does the slot go" and "what did the run
/// do".  Handles returned by counter()/timer()/histogram() stay valid for
/// the registry's lifetime (node-based storage), which is what lets the
/// engine resolve its phase timers once instead of hashing per slot.
///
/// Not thread-safe: one registry per engine/run, merged after the fact if
/// needed (matching the repo's one-engine-per-replicate experiment layout).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pfr::obs {

/// Monotonic event count.
struct Counter {
  std::int64_t value{0};
  void add(std::int64_t delta) noexcept { value += delta; }
};

/// Accumulated durations of one code region.
struct Timer {
  std::int64_t count{0};
  std::int64_t total_ns{0};
  std::int64_t min_ns{0};
  std::int64_t max_ns{0};

  void record(std::int64_t ns) noexcept {
    // A non-monotone clock reading (suspend, VM migration) can hand a
    // ScopedTimer a negative span; clamp rather than poison min/total.
    if (ns < 0) ns = 0;
    if (count == 0 || ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
    total_ns += ns;
    ++count;
  }
  /// Folds `other`'s accumulation into this timer, as if every span had
  /// been recorded here: counts and totals add, min/max combine (an empty
  /// side contributes nothing).
  void combine(const Timer& other) noexcept {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
    total_ns += other.total_ns;
    count += other.count;
  }
  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

/// Fixed-bucket histogram: counts[i] tallies values <= bounds[i]; the last
/// bucket is the implicit +inf overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Nearest-rank quantile estimate from the buckets: the upper bound of
  /// the bucket containing the ceil(q * total)-th smallest observation
  /// (rank clamped to >= 1).  Returns 0 with no observations and +inf when
  /// the rank lands in the overflow bucket.  q is clamped to [0, 1]
  /// (NaN treated as 0).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Adds `other`'s buckets/total/sum into this histogram.  Throws
  /// std::invalid_argument unless the bucket bounds are identical (merging
  /// differently-shaped histograms silently would misplace every count).
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;         ///< ascending upper bounds
  std::vector<std::int64_t> counts_;   ///< bounds_.size() + 1 (overflow last)
  std::int64_t total_{0};
  double sum_{0.0};
};

class MetricsRegistry {
 public:
  /// Finds or creates; returned references stay valid until destruction.
  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);
  /// `upper_bounds` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  void set_gauge(const std::string& name, double value);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const
      noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Timer>& timers() const noexcept {
    return timers_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Folds `other` into this registry, name by name: counters add, timers
  /// combine (count/total add, min/max fold), histograms add bucket-wise
  /// (std::invalid_argument on mismatched bounds), gauges take `other`'s
  /// value (last writer wins, matching set_gauge semantics).  This is how
  /// per-shard / per-replicate registries collapse into one run-level
  /// readout.
  void merge(const MetricsRegistry& other);

  /// Full dump as one JSON object: {"counters":{...},"gauges":{...},
  /// "timers":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable end-of-run report (counters plus per-phase timings).
  [[nodiscard]] std::string report() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

/// Times one scope into a Timer.  A null timer disables the clock calls
/// entirely, so instrumented code pays one branch when metrics are off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) noexcept : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      timer_->record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

/// Nearest-rank percentile of an ascending-sorted sample: the
/// ceil(q * n)-th smallest element (rank clamped to [1, n]); 0 on an empty
/// sample.  This is the one definition used everywhere a bench reports
/// p50/p99 -- so a sample sitting exactly on a histogram bucket bound and
/// the Histogram::quantile readout agree.
template <typename T>
[[nodiscard]] T percentile(const std::vector<T>& sorted, double q) noexcept {
  if (sorted.empty()) return T{};
  // !(q >= 0) also catches NaN, whose ceil-and-cast below is otherwise UB.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace pfr::obs
