#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pfr::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++counts_[i];
  ++total_;
  sum_ += value;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  // !(q >= 0) also catches NaN, whose ceil-and-cast below is otherwise UB.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return bounds_[i];
  }
  return std::numeric_limits<double>::infinity();
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Timer& MetricsRegistry::timer(const std::string& name) {
  return timers_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{std::move(upper_bounds)})
      .first->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].add(c.value);
  }
  for (const auto& [name, t] : other.timers_) {
    timers_[name].combine(t);
  }
  for (const auto& [name, v] : other.gauges_) {
    gauges_[name] = v;  // last writer wins, as with set_gauge
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

namespace {

void write_double(std::ostringstream& os, double v) {
  // JSON has no inf/nan; our gauges never produce them, but stay safe.
  if (v != v || v > 1e308 || v < -1e308) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << name << "\":" << c.value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "" : ",") << '"' << name << "\":";
    write_double(os, v);
    first = false;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << t.count
       << ",\"total_ns\":" << t.total_ns << ",\"min_ns\":" << t.min_ns
       << ",\"max_ns\":" << t.max_ns << ",\"mean_ns\":";
    write_double(os, t.mean_ns());
    os << '}';
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << name << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) os << ',';
      write_double(os, h.bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      os << (i > 0 ? "," : "") << h.counts()[i];
    }
    os << "],\"total\":" << h.total() << ",\"sum\":";
    write_double(os, h.sum());
    os << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::report() const {
  std::ostringstream os;
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << name << " = " << c.value << '\n';
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, v] : gauges_) {
      os << "  " << name << " = " << v << '\n';
    }
  }
  if (!timers_.empty()) {
    os << "timers (mean over count, ns):\n";
    for (const auto& [name, t] : timers_) {
      os << "  " << name << ": count=" << t.count << " mean=" << t.mean_ns()
         << " min=" << t.min_ns << " max=" << t.max_ns
         << " total=" << t.total_ns << '\n';
    }
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " (total=" << h.total() << "):\n";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      os << "  <= ";
      if (i < h.bounds().size()) {
        os << h.bounds()[i];
      } else {
        os << "inf";
      }
      os << ": " << h.counts()[i] << '\n';
    }
  }
  return os.str();
}

}  // namespace pfr::obs
