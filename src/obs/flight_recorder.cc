#include "obs/flight_recorder.h"

#include <fstream>

#include "obs/jsonl_sink.h"

namespace pfr::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg, int shards)
    : cfg_(std::move(cfg)), rings_(static_cast<std::size_t>(
          shards < 1 ? 1 : shards)) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  for (Ring& ring : rings_) {
    ring.slots.resize(cfg_.capacity);
  }
  for (const EventKind kind : cfg_.triggers) {
    trigger_mask_ |= std::uint64_t{1} << static_cast<unsigned>(kind);
  }
}

bool FlightRecorder::is_trigger(EventKind kind) const noexcept {
  return (trigger_mask_ >> static_cast<unsigned>(kind)) & 1u;
}

void FlightRecorder::record(Ring& ring, const TraceEvent& event) {
  const std::uint64_t seq = ring.seq.load(std::memory_order_relaxed);
  // Serialize immediately: the event's string_views die when on_event
  // returns, and a dump must not re-touch engine state anyway.
  ring.slots[seq % cfg_.capacity] = to_jsonl(event);
  ring.seq.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::on_event(const TraceEvent& event) {
  if (frozen()) return;  // the incident state is preserved, drop the rest
  events_seen_.fetch_add(1, std::memory_order_relaxed);
  const int shard = event.shard >= 0 && event.shard < shard_count()
                        ? event.shard
                        : 0;
  record(rings_[static_cast<std::size_t>(shard)], event);
  if (!cfg_.dump_path.empty() && cfg_.max_dumps > 0 &&
      is_trigger(event.kind) &&
      dumps_.load(std::memory_order_relaxed) < cfg_.max_dumps) {
    if (dump_to_file(cfg_.dump_path)) {
      dumps_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<std::string> FlightRecorder::lines(int shard) const {
  const Ring& ring = rings_.at(static_cast<std::size_t>(shard));
  const std::uint64_t seq = ring.seq.load(std::memory_order_acquire);
  const std::uint64_t n =
      seq < cfg_.capacity ? seq : static_cast<std::uint64_t>(cfg_.capacity);
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = seq - n; i < seq; ++i) {
    out.push_back(ring.slots[i % cfg_.capacity]);
  }
  return out;
}

std::size_t FlightRecorder::dump(std::ostream& out) const {
  std::size_t written = 0;
  for (int k = 0; k < shard_count(); ++k) {
    for (const std::string& line : lines(k)) {
      out << line << '\n';
      ++written;
    }
  }
  return written;
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  dump(out);
  return static_cast<bool>(out);
}

}  // namespace pfr::obs
