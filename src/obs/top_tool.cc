/// \file top_tool.cc
/// \brief pfair-top: live per-shard tables from a Prometheus telemetry file.
///
///   pfair-top --file=results/telemetry.prom            # one table, exit
///   pfair-top --file=results/telemetry.prom --watch    # refresh @1s
///   pfair-top --file=telemetry.prom --watch=250        # refresh @250ms
///   pfair-top --file=telemetry.prom --watch --iterations=20
///
/// The file is whatever a `--telemetry-out=FILE` run (service_throughput,
/// cluster_scaling) writes periodically: Prometheus text exposition with
/// per-shard samples.  Rates (slots/s) come from deltas between two reads
/// against the pfr_wall_seconds gauge, so the first watch frame shows "-".
/// The writer uses tmp+rename, so a read never sees a torn exposition.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/prometheus.h"
#include "util/cli.h"

namespace {

using pfr::obs::parse_prometheus;
using pfr::obs::PrometheusSample;

/// One parsed exposition, reorganized for table rendering: metric name ->
/// shard -> value (shard -1 holds the unlabeled cross-shard sample).
struct Frame {
  std::map<std::string, std::map<int, double>> values;
  double wall_seconds{0};
  int shards{0};

  [[nodiscard]] std::optional<double> get(const std::string& name,
                                          int shard) const {
    const auto it = values.find(name);
    if (it == values.end()) return std::nullopt;
    const auto jt = it->second.find(shard);
    if (jt == it->second.end()) return std::nullopt;
    return jt->second;
  }

  /// Sum of a per-shard family across every labeled shard (nullopt when
  /// the family is absent from the exposition entirely).
  [[nodiscard]] std::optional<double> sum(const std::string& name) const {
    const auto it = values.find(name);
    if (it == values.end()) return std::nullopt;
    double total = 0;
    for (const auto& [shard, v] : it->second) {
      if (shard >= 0) total += v;
    }
    return total;
  }
};

std::optional<Frame> load_frame(const std::string& path, std::string* error) {
  std::ifstream in{path};
  if (!in) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto samples = parse_prometheus(buf.str(), error);
  if (!samples) return std::nullopt;

  Frame frame;
  for (const PrometheusSample& s : *samples) {
    // Histogram series carry an `le` label per bucket; the table only needs
    // the scalar families, so skip buckets (sum/count pass through).
    if (s.labels.count("le") > 0) continue;
    int shard = -1;
    const auto it = s.labels.find("shard");
    if (it != s.labels.end()) {
      try {
        shard = std::stoi(it->second);
      } catch (...) {
        continue;
      }
      if (shard + 1 > frame.shards) frame.shards = shard + 1;
    }
    frame.values[s.name][shard] = s.value;
  }
  if (const auto wall = frame.get("pfr_wall_seconds", -1)) {
    frame.wall_seconds = *wall;
  }
  return frame;
}

std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_opt(const std::optional<double>& v, int precision = 1) {
  return v ? fmt(*v, precision) : "-";
}

std::string fmt_count(const std::optional<double>& v) {
  if (!v) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(*v));
  return buf;
}

const char* slo_name(const std::optional<double>& state) {
  if (!state) return "-";
  switch (static_cast<int>(*state)) {
    case 0: return "ok";
    case 1: return "WARN";
    case 2: return "BREACH";
    default: return "?";
  }
}

/// Renders one table: shard rows (plus a TOTAL row) with slot counts,
/// slots/s from the previous frame's deltas, queue depth, drift, SLO.
std::string render(const Frame& frame, const Frame* prev) {
  std::ostringstream os;
  os << "pfair-top  wall=" << fmt(frame.wall_seconds, 1) << "s  shards="
     << (frame.shards > 0 ? frame.shards : 1) << "\n\n";

  const auto row = [&](const std::string& label, int shard) {
    const auto slots = frame.get("pfr_slots_total", shard);
    std::string rate = "-";
    if (prev != nullptr) {
      const auto prev_slots = prev->get("pfr_slots_total", shard);
      const double dt = frame.wall_seconds - prev->wall_seconds;
      if (slots && prev_slots && dt > 0) {
        rate = fmt((*slots - *prev_slots) / dt, 0);
      }
    }
    os << "  " << label;
    for (std::size_t i = label.size(); i < 8; ++i) os << ' ';
    const auto cell = [&os](const std::string& text, std::size_t width) {
      for (std::size_t i = text.size(); i < width; ++i) os << ' ';
      os << text << "  ";
    };
    cell(fmt_count(slots), 10);
    cell(rate, 9);
    cell(fmt_opt(frame.get("pfr_queue_depth", shard), 0), 5);
    cell(fmt_opt(frame.get("pfr_tasks", shard), 0), 5);
    cell(fmt_opt(frame.get("pfr_drift_abs", shard), 3), 7);
    cell(fmt_count(frame.get("pfr_deadline_misses_total", shard)), 6);
    cell(fmt_opt(frame.get("pfr_slo_p99_latency_slots", shard), 0), 5);
    cell(fmt_opt(frame.get("pfr_slo_shed_rate", shard), 3), 6);
    os << slo_name(frame.get("pfr_slo_status", shard)) << '\n';
  };

  os << "  shard      slots    slots/s  queue  tasks    drift  misses"
        "    p99    shed  slo\n";
  for (int k = 0; k < frame.shards; ++k) {
    row(std::to_string(k), k);
  }
  row("TOTAL", -1);

  // Front door: one cross-shard net.* line, shown once a run with an
  // IngestMux publishes ingest telemetry into the exposition.
  if (const auto net_frames = frame.get("pfr_net_frames_total", -1)) {
    std::string rate = "-";
    if (prev != nullptr) {
      const auto p = prev->get("pfr_net_frames_total", -1);
      const double dt = frame.wall_seconds - prev->wall_seconds;
      if (p && dt > 0) rate = fmt((*net_frames - *p) / dt, 0);
    }
    os << "\n  net     frames=" << fmt_count(net_frames) << "  frames/s="
       << rate << "  conns="
       << fmt_opt(frame.get("pfr_net_connections", -1), 0) << "  ring_depth="
       << fmt_opt(frame.get("pfr_net_ring_depth", -1), 0) << "  malformed="
       << fmt_count(frame.get("pfr_net_malformed_total", -1)) << "  ring_shed="
       << fmt_count(frame.get("pfr_net_ring_shed_total", -1)) << '\n';
  }

  // Elastic control plane: one cross-shard line, shown once a cluster with
  // lending enabled publishes loan telemetry.  `delta` is per-shard
  // borrowed - lent, so +n marks a borrower and -n a donor; the deltas
  // always sum to zero (the ledger's conservation invariant).
  if (const auto loans = frame.sum("pfr_elastic_loans_total")) {
    os << "\n  elastic loans=" << fmt_count(loans) << "  recalls="
       << fmt_count(frame.sum("pfr_elastic_recalls_total"))
       << "  mig_avoided="
       << fmt_count(frame.sum("pfr_elastic_migrations_avoided_total"))
       << "  delta=";
    for (int k = 0; k < frame.shards; ++k) {
      const double lent = frame.get("pfr_elastic_lent_out", k).value_or(0);
      const double borrowed =
          frame.get("pfr_elastic_borrowed", k).value_or(0);
      const auto d = static_cast<long long>(borrowed - lent);
      if (k > 0) os << ',';
      if (d > 0) os << '+';
      os << d;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfr;

  const CliArgs cli{argc, argv};
  const std::string file = cli.get_string("file", "");
  const bool watch = cli.has("watch");
  std::int64_t interval_ms = cli.get_int("watch", 1000);
  if (interval_ms <= 0) interval_ms = 1000;
  const std::int64_t iterations = cli.get_int("iterations", 0);
  const bool once = cli.get_bool("once");
  if (cli.error()) {
    std::cerr << "argument error: " << *cli.error() << "\n";
    return 2;
  }
  if (!cli.unknown_flags().empty()) {
    std::cerr << "unknown flag: --" << cli.unknown_flags().front() << "\n";
    return 2;
  }
  if (file.empty()) {
    std::cerr << "usage: pfair-top --file=telemetry.prom [--watch[=MS]] "
                 "[--iterations=N] [--once]\n";
    return 2;
  }

  std::optional<Frame> prev;
  std::int64_t frames = 0;
  while (true) {
    std::string error;
    const auto frame = load_frame(file, &error);
    if (!frame) {
      std::cerr << "pfair-top: " << error << "\n";
      return 1;
    }
    if (watch && !once && frames > 0) {
      std::cout << "\x1b[H\x1b[2J";  // clear for the next live table
    }
    std::cout << render(*frame, prev ? &*prev : nullptr) << std::flush;
    prev = frame;
    ++frames;
    if (once || !watch) break;
    if (iterations > 0 && frames >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
