/// \file chrome_trace_sink.h
/// \brief Chrome trace_event exporter: runs open in chrome://tracing or
/// Perfetto (ui.perfetto.dev) with one track per task and one per
/// processor lane.
///
/// Mapping (one simulated slot = one quantum = 1 ms = 1000 trace us):
///   * pid 1 "tasks":      tid = TaskId.  Dispatches are 1-slot complete
///     ("X") events named "<task>_<j>"; halts, initiations, enactments,
///     drift samples, policing decisions and misses are instant ("i")
///     events on the same track.
///   * pid 2 "processors": tid = dispatch lane.  Each dispatch is mirrored
///     as a complete event named after the task, so per-processor
///     utilization and holes are visible at a glance.
///
/// Events are serialized on arrival but the file is written on flush()
/// (the trace_event container is a single JSON object).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "obs/sink.h"

namespace pfr::obs {

class ChromeTraceSink final : public EventSink {
 public:
  explicit ChromeTraceSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing.  Throws std::runtime_error on failure.
  explicit ChromeTraceSink(const std::string& path);

  ~ChromeTraceSink() override;

  void on_event(const TraceEvent& event) override;

  /// Writes the complete trace JSON.  Idempotent; also run by the
  /// destructor if never called.
  void flush() override;

 private:
  void add(std::string serialized) { events_.push_back(std::move(serialized)); }

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::vector<std::string> events_;
  std::map<std::int32_t, std::string> task_names_;
  std::set<int> cpus_;
  bool flushed_{false};
};

}  // namespace pfr::obs
