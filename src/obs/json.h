/// \file json.h
/// \brief Minimal JSON utilities for the observability layer.
///
/// The exporters only ever *write* JSON, and the trace tool only ever reads
/// back the flat one-object-per-line records the JSONL sink wrote, so this
/// deliberately is not a general JSON library: an escaper, a full-syntax
/// validator (used by tests to assert the Chrome export is well-formed),
/// and a parser for flat (non-nested) objects.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace pfr::obs {

/// Escapes a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// True iff `text` is one syntactically valid JSON value (full grammar:
/// nesting, arrays, strings with escapes, numbers, literals).
[[nodiscard]] bool json_valid(std::string_view text);

/// Parses a flat JSON object -- string/number/bool/null values only, no
/// nesting -- into key -> raw-value-text (strings are unescaped, other
/// values are kept verbatim).  Returns nullopt on malformed or nested
/// input.
[[nodiscard]] std::optional<std::map<std::string, std::string>>
parse_flat_json_object(std::string_view line);

}  // namespace pfr::obs
