#include "obs/trace_analysis.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <sstream>

#include "obs/json.h"

namespace pfr::obs {

std::vector<ParsedEvent> read_jsonl_trace(std::istream& in,
                                          std::string* error) {
  std::vector<ParsedEvent> out;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto obj = parse_flat_json_object(line);
    if (!obj) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": malformed JSON object";
      }
      return out;
    }
    ParsedEvent ev;
    ev.raw = line;
    ev.fields = std::move(*obj);
    if (const auto it = ev.fields.find("kind"); it != ev.fields.end()) {
      ev.kind = it->second;
    }
    if (const auto it = ev.fields.find("slot"); it != ev.fields.end()) {
      ev.slot = std::strtoll(it->second.c_str(), nullptr, 10);
    }
    if (const auto it = ev.fields.find("task"); it != ev.fields.end()) {
      ev.task = static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
    }
    if (const auto it = ev.fields.find("shard"); it != ev.fields.end()) {
      ev.shard =
          static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
    }
    if (const auto it = ev.fields.find("name"); it != ev.fields.end()) {
      ev.name = it->second;
    }
    if (ev.name.empty() && ev.task >= 0) {
      ev.name = "task" + std::to_string(ev.task);
    }
    out.push_back(std::move(ev));
  }
  return out;
}

GapStats gap_stats(const std::vector<std::int64_t>& gaps) {
  GapStats s;
  if (gaps.empty()) return s;
  s.count = static_cast<std::int64_t>(gaps.size());
  s.min = *std::min_element(gaps.begin(), gaps.end());
  s.max = *std::max_element(gaps.begin(), gaps.end());
  std::int64_t sum = 0;
  for (const std::int64_t g : gaps) sum += g;
  s.mean = static_cast<double>(sum) / static_cast<double>(s.count);
  return s;
}

TraceSummary summarize_trace(const std::vector<ParsedEvent>& events) {
  TraceSummary s;
  s.total_events = static_cast<std::int64_t>(events.size());
  std::map<std::string, pfair::Slot> last_enactment;
  std::map<std::string, std::vector<pfair::Slot>> open_halts;
  std::map<std::string, pfair::Slot> open_migrations;
  bool first = true;
  for (const ParsedEvent& ev : events) {
    if (first) {
      s.first_slot = ev.slot;
      s.last_slot = ev.slot;
      first = false;
    }
    s.first_slot = std::min(s.first_slot, ev.slot);
    s.last_slot = std::max(s.last_slot, ev.slot);
    ++s.by_kind[ev.kind];
    if (!ev.name.empty()) ++s.by_task[ev.name][ev.kind];
    if (ev.shard >= 0) ++s.by_shard[ev.shard][ev.kind];
    if (ev.kind == "migrate_out") {
      open_migrations[ev.name] = ev.slot;
    } else if (ev.kind == "migrate_in") {
      if (const auto out = open_migrations.find(ev.name);
          out != open_migrations.end()) {
        s.migration_latencies.push_back(ev.slot - out->second);
        open_migrations.erase(out);
      }
    }
    if (ev.kind == "halt") {
      open_halts[ev.name].push_back(ev.slot);
    } else if (ev.kind == "enactment") {
      const auto last = last_enactment.find(ev.name);
      if (last != last_enactment.end()) {
        s.enactment_gaps.push_back(ev.slot - last->second);
      }
      last_enactment[ev.name] = ev.slot;
      if (auto halts = open_halts.find(ev.name); halts != open_halts.end()) {
        for (const pfair::Slot h : halts->second) {
          s.halt_latencies.push_back(ev.slot - h);
        }
        halts->second.clear();
      }
    }
  }
  return s;
}

namespace {

void render_distribution(std::ostringstream& os, const char* title,
                         const std::vector<std::int64_t>& values) {
  const GapStats stats = gap_stats(values);
  os << title << ": n=" << stats.count;
  if (stats.count == 0) {
    os << '\n';
    return;
  }
  os << " min=" << stats.min << " mean=" << stats.mean << " max=" << stats.max
     << "\n  distribution (slots):";
  // Fixed power-of-two buckets, the histogram convention of metrics.h.
  const std::int64_t bounds[] = {0, 1, 2, 4, 8, 16, 32, 64};
  std::int64_t counts[9] = {};
  for (const std::int64_t v : values) {
    std::size_t i = 0;
    while (i < 8 && v > bounds[i]) ++i;
    ++counts[i];
  }
  for (std::size_t i = 0; i < 9; ++i) {
    if (counts[i] == 0) continue;
    os << "  <=";
    if (i < 8) {
      os << bounds[i];
    } else {
      os << "inf";
    }
    os << ":" << counts[i];
  }
  os << '\n';
}

}  // namespace

std::string render_trace_summary(const TraceSummary& s) {
  std::ostringstream os;
  os << "events: " << s.total_events << "  slots: [" << s.first_slot << ", "
     << s.last_slot << "]\n\nby kind:\n";
  for (const auto& [kind, count] : s.by_kind) {
    os << "  " << kind << ": " << count << '\n';
  }
  os << "\nby task:\n";
  for (const auto& [name, kinds] : s.by_task) {
    std::int64_t total = 0;
    for (const auto& [kind, count] : kinds) total += count;
    os << "  " << name << " (" << total << "):";
    for (const auto& [kind, count] : kinds) {
      os << ' ' << kind << '=' << count;
    }
    os << '\n';
  }
  if (!s.by_shard.empty()) {
    os << "\nby shard:\n";
    for (const auto& [shard, kinds] : s.by_shard) {
      std::int64_t total = 0;
      for (const auto& [kind, count] : kinds) total += count;
      os << "  shard" << shard << " (" << total << "):";
      for (const auto& [kind, count] : kinds) {
        os << ' ' << kind << '=' << count;
      }
      os << '\n';
    }
  }
  os << '\n';
  render_distribution(os, "inter-enactment gaps", s.enactment_gaps);
  render_distribution(os, "halt -> enactment latency", s.halt_latencies);
  if (!s.migration_latencies.empty()) {
    render_distribution(os, "migrate_out -> migrate_in latency",
                        s.migration_latencies);
  }
  return os.str();
}

}  // namespace pfr::obs
