#include "obs/chrome_trace_sink.h"

#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace pfr::obs {
namespace {

constexpr int kTaskPid = 1;
constexpr int kCpuPid = 2;
constexpr std::int64_t kUsPerSlot = 1000;  // 1 ms quantum

std::string instant(const TraceEvent& e, const std::string& name,
                    const std::string& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
     << to_string(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
     << e.slot * kUsPerSlot << ",\"pid\":" << kTaskPid << ",\"tid\":" << e.task
     << ",\"args\":{" << args << "}}";
  return os.str();
}

std::string complete(int pid, std::int64_t tid, const std::string& name,
                     pfair::Slot slot, const std::string& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name)
     << "\",\"cat\":\"dispatch\",\"ph\":\"X\",\"ts\":" << slot * kUsPerSlot
     << ",\"dur\":" << kUsPerSlot << ",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"args\":{" << args << "}}";
  return os.str();
}

std::string rational_arg(const char* key, const Rational& r) {
  return std::string{"\""} + key + "\":\"" + r.to_string() + '"';
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("ChromeTraceSink: cannot open " + path);
  }
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::on_event(const TraceEvent& e) {
  if (e.task >= 0 && !e.task_name.empty()) {
    task_names_.emplace(e.task, std::string{e.task_name});
  }
  const std::string name{e.task_name};
  switch (e.kind) {
    case EventKind::kDispatch: {
      std::ostringstream args;
      args << "\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline
           << ",\"b\":" << e.b << ",\"cpu\":" << e.cpu;
      add(complete(kTaskPid, e.task, name + "_" + std::to_string(e.subtask),
                   e.slot, args.str()));
      add(complete(kCpuPid, e.cpu, name, e.slot, args.str()));
      cpus_.insert(e.cpu);
      break;
    }
    case EventKind::kTaskJoin:
      add(instant(e, "join " + name, rational_arg("weight", e.weight_to)));
      break;
    case EventKind::kSubtaskRelease: {
      std::ostringstream args;
      args << "\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline
           << ",\"b\":" << e.b;
      add(instant(e, "release " + name + "_" + std::to_string(e.subtask),
                  args.str()));
      break;
    }
    case EventKind::kHalt:
      add(instant(e, "halt " + name + "_" + std::to_string(e.subtask),
                  "\"subtask\":" + std::to_string(e.subtask)));
      break;
    case EventKind::kInitiation:
      add(instant(e,
                  std::string{"initiate "} + pfair::to_string(e.rule) + " " +
                      e.weight_from.to_string() + "->" +
                      e.weight_to.to_string(),
                  std::string{"\"rule\":\""} + pfair::to_string(e.rule) +
                      "\"," + rational_arg("from", e.weight_from) + "," +
                      rational_arg("to", e.weight_to)));
      break;
    case EventKind::kEnactment:
      add(instant(e, "enact " + e.weight_to.to_string(),
                  std::string{"\"rule\":\""} + pfair::to_string(e.rule) +
                      "\"," + rational_arg("weight", e.weight_to)));
      break;
    case EventKind::kDriftSample:
      add(instant(e, "drift " + e.value.to_string(),
                  rational_arg("drift", e.value) +
                      ",\"folded\":" + std::to_string(e.folded)));
      break;
    case EventKind::kPolicingClamp:
      add(instant(e, "clamp " + e.weight_from.to_string() + "->" +
                         e.weight_to.to_string(),
                  rational_arg("requested", e.weight_from) + "," +
                      rational_arg("granted", e.weight_to)));
      break;
    case EventKind::kPolicingReject:
      add(instant(e, "reject " + e.weight_from.to_string(),
                  rational_arg("requested", e.weight_from)));
      break;
    case EventKind::kLeaveRequest:
      add(instant(e, "leave " + name,
                  "\"leaves_at\":" + std::to_string(e.when)));
      break;
    case EventKind::kDeadlineMiss:
      add(instant(e, "MISS " + name + "_" + std::to_string(e.subtask),
                  "\"subtask\":" + std::to_string(e.subtask) +
                      ",\"deadline\":" + std::to_string(e.deadline)));
      break;
    case EventKind::kProcDown:
    case EventKind::kProcUp:
    case EventKind::kQuantumOverrun: {
      // Shown on the processor track so capacity gaps line up with the
      // dispatch lanes.
      const char* label = e.kind == EventKind::kProcDown    ? "CRASH cpu"
                          : e.kind == EventKind::kProcUp    ? "recover cpu"
                                                            : "overrun cpu";
      std::ostringstream os;
      os << "{\"name\":\"" << label << e.cpu << "\",\"cat\":\""
         << to_string(e.kind) << "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
         << e.slot * kUsPerSlot << ",\"pid\":" << kCpuPid
         << ",\"tid\":" << e.cpu << ",\"args\":{\"capacity\":" << e.folded
         << "}}";
      add(os.str());
      cpus_.insert(e.cpu);
      break;
    }
    case EventKind::kRequestDropped:
      add(instant(e, "request dropped (" + name + ")", "\"dropped\":true"));
      break;
    case EventKind::kRequestDelayed:
      add(instant(e, "request delayed (" + name + ")",
                  "\"until\":" + std::to_string(e.when)));
      break;
    case EventKind::kDegradeBegin:
      add(instant(e, "DEGRADE x" + e.value.to_string(),
                  rational_arg("factor", e.value) +
                      ",\"capacity\":" + std::to_string(e.folded)));
      break;
    case EventKind::kDegradeEnd:
      add(instant(e, "degrade end",
                  "\"capacity\":" + std::to_string(e.folded)));
      break;
    case EventKind::kQuarantine:
      add(instant(e, "QUARANTINE " + name,
                  "\"reason\":\"" + json_escape(e.detail) + '"'));
      break;
    case EventKind::kInvariantViolation:
      add(instant(e, "invariant violation",
                  "\"what\":\"" + json_escape(e.detail) + '"'));
      break;
    case EventKind::kRequestEnqueue:
      add(instant(e, "enqueue " + std::string{e.detail},
                  "\"due\":" + std::to_string(e.when) +
                      ",\"batch\":" + std::to_string(e.folded)));
      break;
    case EventKind::kRequestAdmit:
      add(instant(e, "admit " + name + " " + e.weight_to.to_string(),
                  rational_arg("requested", e.weight_from) + "," +
                      rational_arg("granted", e.weight_to) +
                      ",\"enacts_at\":" + std::to_string(e.when)));
      break;
    case EventKind::kRequestReject:
      add(instant(e, "reject request (" + std::string{e.detail} + ")",
                  rational_arg("requested", e.weight_from)));
      break;
    case EventKind::kRequestShed:
      add(instant(e, "SHED request (" + std::string{e.detail} + ")",
                  "\"deadline\":" + std::to_string(e.when)));
      break;
    case EventKind::kShardStep:
      // One per shard per slot is too dense for a useful timeline; the
      // JSONL export and pfair-trace carry the per-shard breakdown.
      break;
    case EventKind::kMigrateOut:
      add(instant(e, "migrate " + name + " -> shard" +
                         std::to_string(e.folded),
                  "\"shard\":" + std::to_string(e.shard) +
                      ",\"to_shard\":" + std::to_string(e.folded) +
                      ",\"leaves_at\":" + std::to_string(e.when) + "," +
                      rational_arg("weight", e.weight_from)));
      break;
    case EventKind::kMigrateIn:
      add(instant(e, "arrive " + name + " <- shard" +
                         std::to_string(e.folded),
                  "\"shard\":" + std::to_string(e.shard) +
                      ",\"from_shard\":" + std::to_string(e.folded) + "," +
                      rational_arg("weight", e.weight_to) + "," +
                      rational_arg("drift", e.value)));
      break;
    case EventKind::kRebalance:
      add(instant(e, "REBALANCE " + std::string{e.detail},
                  "\"moves\":" + std::to_string(e.folded) + "," +
                      rational_arg("spread", e.value) + ",\"trigger\":\"" +
                      json_escape(e.detail) + '"'));
      break;
    case EventKind::kNetConnOpen:
      add(instant(e, "conn open #" + std::to_string(e.folded),
                  "\"conn\":" + std::to_string(e.folded) +
                      ",\"transport\":\"" + json_escape(e.detail) + '"'));
      break;
    case EventKind::kNetConnClose:
      add(instant(e, "conn close #" + std::to_string(e.folded),
                  "\"conn\":" + std::to_string(e.folded) +
                      ",\"watermark\":" + std::to_string(e.when) +
                      ",\"transport\":\"" + json_escape(e.detail) + '"'));
      break;
    case EventKind::kNetMalformedFrame:
      add(instant(e, "MALFORMED frame",
                  "\"source\":" + std::to_string(e.folded) +
                      ",\"error\":\"" + json_escape(e.detail) + '"'));
      break;
    case EventKind::kPrioritySaturated:
      add(instant(e, "SATURATED T_" + std::to_string(e.subtask),
                  "\"subtask\":" + std::to_string(e.subtask) +
                      ",\"deadline\":" + std::to_string(e.deadline) +
                      ",\"field\":\"" + json_escape(e.detail) + '"'));
      break;
  }
}

void ChromeTraceSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  std::ostream& os = *out_;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&os, &first](const std::string& ev) {
    if (!first) os << ",\n";
    first = false;
    os << ev;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(kTaskPid) + ",\"args\":{\"name\":\"tasks\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(kCpuPid) + ",\"args\":{\"name\":\"processors\"}}");
  for (const auto& [id, name] : task_names_) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(kTaskPid) + ",\"tid\":" + std::to_string(id) +
         ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
  }
  for (const int cpu : cpus_) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(kCpuPid) + ",\"tid\":" + std::to_string(cpu) +
         ",\"args\":{\"name\":\"cpu" + std::to_string(cpu) + "\"}}");
  }
  for (const std::string& ev : events_) emit(ev);
  os << "\n]}\n";
  os.flush();
}

}  // namespace pfr::obs
