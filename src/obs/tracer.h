/// \file tracer.h
/// \brief Tracer: the engine-side emission point, free when disabled.
///
/// The engine holds a Tracer by value and brackets every emission site with
/// `if (tracer.enabled())`, so a run without an attached sink pays one
/// predictable branch per site and never constructs a TraceEvent.  The
/// overhead_micro bench guards the < 2% regression budget for this.
#pragma once

#include "obs/sink.h"

namespace pfr::obs {

class Tracer {
 public:
  /// Attaches a sink (nullptr detaches).  The caller keeps ownership and
  /// must keep the sink alive while attached.
  void set_sink(EventSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] EventSink* sink() const noexcept { return sink_; }

  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }

  void emit(const TraceEvent& event) const {
    if (sink_ != nullptr) sink_->on_event(event);
  }

 private:
  EventSink* sink_{nullptr};
};

}  // namespace pfr::obs
