#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace pfr::obs {
namespace {

/// Cursor over the input with the shared skip/scan primitives of the
/// validator and the flat-object parser.
struct Scanner {
  std::string_view text;
  std::size_t pos{0};

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept {
    return done() ? '\0' : text[pos];
  }
  char take() noexcept { return done() ? '\0' : text[pos++]; }
  bool expect(char c) noexcept {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  void skip_ws() noexcept {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  /// Consumes a JSON string (opening quote already consumed when
  /// `opened`); appends the unescaped content to *out if given.
  bool scan_string(bool opened, std::string* out) {
    if (!opened && !expect('"')) return false;
    while (true) {
      if (done()) return false;
      char c = take();
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (done()) return false;
        const char e = take();
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
                return false;
              }
              take();
            }
            c = '?';  // code point not materialized; fine for our traces
            break;
          }
          default: return false;
        }
      }
      if (out != nullptr) out->push_back(c);
    }
  }

  /// Consumes a JSON number; appends its verbatim text to *out if given.
  bool scan_number(std::string* out) {
    const std::size_t start = pos;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (take() != '0') {
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == '.') {
      take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (out != nullptr) out->append(text.substr(start, pos - start));
    return true;
  }

  bool scan_literal(std::string_view word, std::string* out) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    if (out != nullptr) out->append(word);
    return true;
  }

  /// Full recursive value (validator only; depth-limited for safety).
  bool scan_value(int depth) {  // NOLINT(misc-no-recursion)
    if (depth > 64) return false;
    skip_ws();
    switch (peek()) {
      case '"': return scan_string(/*opened=*/false, nullptr);
      case '{': {
        take();
        skip_ws();
        if (expect('}')) return true;
        while (true) {
          skip_ws();
          if (!scan_string(/*opened=*/false, nullptr)) return false;
          skip_ws();
          if (!expect(':')) return false;
          if (!scan_value(depth + 1)) return false;
          skip_ws();
          if (expect('}')) return true;
          if (!expect(',')) return false;
        }
      }
      case '[': {
        take();
        skip_ws();
        if (expect(']')) return true;
        while (true) {
          if (!scan_value(depth + 1)) return false;
          skip_ws();
          if (expect(']')) return true;
          if (!expect(',')) return false;
        }
      }
      case 't': return scan_literal("true", nullptr);
      case 'f': return scan_literal("false", nullptr);
      case 'n': return scan_literal("null", nullptr);
      default: return scan_number(nullptr);
    }
  }
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool json_valid(std::string_view text) {
  Scanner s{text};
  if (!s.scan_value(0)) return false;
  s.skip_ws();
  return s.done();
}

std::optional<std::map<std::string, std::string>> parse_flat_json_object(
    std::string_view line) {
  Scanner s{line};
  s.skip_ws();
  if (!s.expect('{')) return std::nullopt;
  std::map<std::string, std::string> out;
  s.skip_ws();
  if (s.expect('}')) {
    s.skip_ws();
    return s.done() ? std::optional{out} : std::nullopt;
  }
  while (true) {
    s.skip_ws();
    std::string key;
    if (!s.scan_string(/*opened=*/false, &key)) return std::nullopt;
    s.skip_ws();
    if (!s.expect(':')) return std::nullopt;
    s.skip_ws();
    std::string value;
    bool ok = false;
    switch (s.peek()) {
      case '"': ok = s.scan_string(/*opened=*/false, &value); break;
      case 't': ok = s.scan_literal("true", &value); break;
      case 'f': ok = s.scan_literal("false", &value); break;
      case 'n': ok = s.scan_literal("null", &value); break;
      case '{':
      case '[': return std::nullopt;  // flat objects only
      default: ok = s.scan_number(&value); break;
    }
    if (!ok) return std::nullopt;
    out[key] = std::move(value);
    s.skip_ws();
    if (s.expect('}')) break;
    if (!s.expect(',')) return std::nullopt;
  }
  s.skip_ws();
  return s.done() ? std::optional{out} : std::nullopt;
}

}  // namespace pfr::obs
