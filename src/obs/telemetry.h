/// \file telemetry.h
/// \brief Live, thread-safe telemetry: per-shard cache-line-padded atomic
/// counters/gauges and lock-free fixed-bucket histograms, with a consistent
/// cross-shard snapshot()/merge().
///
/// This is the *online* half of the quantitative observability layer.  The
/// per-engine MetricsRegistry (metrics.h) stays the post-hoc tool -- one
/// registry per run, read after the fact; Telemetry is what a running
/// system exposes *while* it runs: the serving/cluster stack's shard
/// threads bump relaxed atomics during their slot, and any other thread may
/// take a snapshot at any time without stopping them.
///
/// Design:
///   * The metric set is a fixed enum (TelCounter / TelGauge / TelHist),
///     not a name table -- lookups are array indexing, registration needs
///     no lock, and a snapshot is a plain struct.
///   * Each shard's counters live in their own TelemetryShard whose hot
///     atomics are cache-line padded, so shard k's updates never bounce
///     shard j's lines (the <3% end-to-end budget on cluster_scaling K=8
///     depends on this).
///   * Writers publish at slot boundaries through a seqlock: begin_slot()
///     makes the version odd, end_slot() makes it even.  snapshot() retries
///     a shard caught mid-publish, so a stable snapshot is consistent at
///     the shard's last slot boundary; if a writer keeps the lock busy the
///     reader accepts a torn (still monotone, never garbage) read and
///     counts it in TelemetrySnapshot::torn.
///   * Histograms are fixed-bucket arrays of atomics (no resizing, no
///     locks); bounds are chosen at construction and shared by all shards
///     so cross-shard merge is bucket-wise addition.
///
/// Everything here is a pure observer: nothing in the engine consults
/// telemetry, so schedules and digests are bit-identical with it on or off
/// (tests assert this).
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace pfr::obs {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Monotone event counts a shard maintains.  Names double as the Prometheus
/// family (see prometheus.h): kSlots -> pfr_slots_total, etc.
enum class TelCounter : std::size_t {
  kSlots,            ///< engine slots stepped
  kDispatched,       ///< subtasks given a slot
  kHalts,            ///< rule-O halts
  kInitiations,      ///< weight-change initiations
  kEnactments,       ///< weight-change enactments
  kMisses,           ///< deadline misses
  kDisruptions,      ///< tasks whose slot allocation flipped at an enactment
  kFaults,           ///< injected faults applied (crash/recover/overrun/...)
  kAdmitted,         ///< serve: accepted requests
  kClamped,          ///< serve: accepted with a reduced weight
  kRejected,         ///< serve: refused requests
  kShed,             ///< serve: shed requests (deadline/overflow)
  kDeferred,         ///< serve: deferred responses issued
  kMigrationsOut,    ///< cluster: migrations started from this shard
  kMigrationsIn,     ///< cluster: migrations completed into this shard
  kNetFrames,        ///< net: wire frames decoded (rings + TCP)
  kNetMalformed,     ///< net: malformed frames / protocol violations
  kNetRingShed,      ///< net: frames shed producer-side at ring overflow
  kElasticLoans,     ///< cluster: capacity loans granted to this shard
  kElasticRecalls,   ///< cluster: loans this shard returned (any cause)
  kElasticMigrationsAvoided,  ///< cluster: migrations lending made unnecessary
  kCount_,           ///< sentinel
};
inline constexpr std::size_t kTelCounterCount =
    static_cast<std::size_t>(TelCounter::kCount_);

/// Point-in-time readings (doubles, last-writer-wins).
enum class TelGauge : std::size_t {
  kTasks,        ///< active member tasks
  kQueueDepth,   ///< serve: request-queue depth
  kLoad,         ///< reserved weight (policing view), as a double
  kCapacity,     ///< alive processors
  kDriftAbs,     ///< mean |drift vs I_PS| per active task (Eqn. (5))
  kNetConnections,  ///< net: live TCP ingest connections
  kNetRingDepth,    ///< net: frames queued across all ingest rings
  kLentOut,         ///< cluster: capacity units this shard has out on loan
  kBorrowed,        ///< cluster: capacity units this shard holds from others
  kCount_,
};
inline constexpr std::size_t kTelGaugeCount =
    static_cast<std::size_t>(TelGauge::kCount_);

/// Lock-free fixed-bucket histograms.
enum class TelHist : std::size_t {
  kEnactLatency,  ///< request due -> enactment, in slots
  kCount_,
};
inline constexpr std::size_t kTelHistCount =
    static_cast<std::size_t>(TelHist::kCount_);

[[nodiscard]] const char* to_string(TelCounter c) noexcept;
[[nodiscard]] const char* to_string(TelGauge g) noexcept;
[[nodiscard]] const char* to_string(TelHist h) noexcept;

/// Upper bounds (inclusive) of the enactment-latency buckets, in slots; the
/// implicit +inf overflow bucket is last.  Matches serve.latency_slots in
/// the post-hoc registry so the two readouts agree.
inline constexpr std::array<double, 9> kTelLatencyBounds{0,  1,  2,  4, 8,
                                                         16, 32, 64, 128};
inline constexpr std::size_t kTelHistBuckets = kTelLatencyBounds.size() + 1;

/// One shard's live metrics.  Exactly one writer thread at a time (the
/// shard's engine/service thread); any number of concurrent readers.
class TelemetryShard {
 public:
  TelemetryShard() = default;
  TelemetryShard(const TelemetryShard&) = delete;
  TelemetryShard& operator=(const TelemetryShard&) = delete;

  // ----- writer side (the shard's own thread) -----

  void add(TelCounter c, std::int64_t delta) noexcept {
    counters_[static_cast<std::size_t>(c)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void set(TelGauge g, double value) noexcept {
    gauges_[static_cast<std::size_t>(g)].v.store(value,
                                                 std::memory_order_relaxed);
  }
  void observe(TelHist h, double value) noexcept;

  /// Seqlock write section around a slot's batch of updates: begin makes
  /// the version odd, end makes it even.  Keep the section short (publish
  /// deltas, not the whole slot's work).
  void begin_slot() noexcept {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }
  void end_slot() noexcept {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  // ----- reader side (any thread) -----

  [[nodiscard]] std::int64_t counter(TelCounter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)].v.load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] double gauge(TelGauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)].v.load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  struct HistData {
    std::array<std::int64_t, kTelHistBuckets> counts{};
    std::int64_t total{0};
    double sum{0};
    /// Nearest-rank quantile over the fixed bounds (same semantics as
    /// Histogram::quantile): 0 with no observations, +inf in overflow.
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] HistData hist(TelHist h) const noexcept;

 private:
  friend class Telemetry;

  /// One counter per cache line: shard-local writers never share a line.
  struct alignas(kCacheLineBytes) PaddedCounter {
    std::atomic<std::int64_t> v{0};
  };
  struct PaddedGauge {
    std::atomic<double> v{0.0};
  };
  struct LockFreeHist {
    std::array<std::atomic<std::int64_t>, kTelHistBuckets> counts{};
    std::atomic<std::int64_t> total{0};
    std::atomic<double> sum{0.0};
  };

  PaddedCounter counters_[kTelCounterCount];
  PaddedGauge gauges_[kTelGaugeCount];
  LockFreeHist hists_[kTelHistCount];
  /// Seqlock version: odd while the writer is inside a slot publish.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> version_{0};
};

/// A consistent copy of one shard's state.
struct ShardSnapshot {
  std::array<std::int64_t, kTelCounterCount> counters{};
  std::array<double, kTelGaugeCount> gauges{};
  std::array<TelemetryShard::HistData, kTelHistCount> hists{};
  std::uint64_t version{0};  ///< shard slot-publish version at capture

  [[nodiscard]] std::int64_t counter(TelCounter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double gauge(TelGauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const TelemetryShard::HistData& hist(TelHist h) const noexcept {
    return hists[static_cast<std::size_t>(h)];
  }
  /// Adds `other` into this snapshot: counters and histogram buckets add,
  /// gauges add for the extensive ones (tasks, queue depth, load) and
  /// average-by-caller for kDriftAbs (merge() handles it).
  void merge(const ShardSnapshot& other);
};

struct TelemetrySnapshot {
  std::vector<ShardSnapshot> shards;
  ShardSnapshot total;   ///< cross-shard merge (drift gauge: shard mean)
  int torn{0};           ///< shards read torn after retries ran out
  double wall_seconds{0};///< seconds since Telemetry construction
};

/// The processwide registry: K shards plus the snapshot machinery.  Shard
/// writers are wait-free; snapshot() never blocks them.
class Telemetry {
 public:
  explicit Telemetry(int shards);

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] TelemetryShard& shard(int k) { return *shards_.at(
      static_cast<std::size_t>(k)); }
  [[nodiscard]] const TelemetryShard& shard(int k) const {
    return *shards_.at(static_cast<std::size_t>(k));
  }

  /// Copies every shard under its seqlock (up to `retries` re-reads per
  /// shard, then accepts a torn read), merges into `total`, and stamps the
  /// wall clock.  Safe from any thread at any time.
  [[nodiscard]] TelemetrySnapshot snapshot(int retries = 8) const;

 private:
  std::vector<std::unique_ptr<TelemetryShard>> shards_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pfr::obs
