#include "obs/jsonl_sink.h"

#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace pfr::obs {
namespace {

void append_task(std::ostringstream& os, const TraceEvent& e) {
  if (e.task < 0) return;
  os << ",\"task\":" << e.task;
  if (!e.task_name.empty()) {
    os << ",\"name\":\"" << json_escape(e.task_name) << '"';
  }
}

void append_rational(std::ostringstream& os, const char* key,
                     const Rational& r) {
  os << ",\"" << key << "\":\"" << r.to_string() << '"';
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("JsonlSink: cannot open " + path);
  }
}

std::string to_jsonl(const TraceEvent& e) {
  std::ostringstream os;
  os << "{\"kind\":\"" << to_string(e.kind) << "\",\"slot\":" << e.slot;
  if (e.shard >= 0) os << ",\"shard\":" << e.shard;
  append_task(os, e);
  switch (e.kind) {
    case EventKind::kTaskJoin:
      append_rational(os, "weight", e.weight_to);
      break;
    case EventKind::kSubtaskRelease:
      os << ",\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline
         << ",\"b\":" << e.b;
      break;
    case EventKind::kDispatch:
      os << ",\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline
         << ",\"b\":" << e.b << ",\"cpu\":" << e.cpu;
      break;
    case EventKind::kHalt:
      os << ",\"subtask\":" << e.subtask;
      break;
    case EventKind::kInitiation:
      os << ",\"rule\":\"" << to_string(e.rule) << '"';
      append_rational(os, "from", e.weight_from);
      append_rational(os, "to", e.weight_to);
      break;
    case EventKind::kEnactment:
      os << ",\"rule\":\"" << to_string(e.rule) << '"';
      append_rational(os, "weight", e.weight_to);
      break;
    case EventKind::kDriftSample:
      append_rational(os, "drift", e.value);
      os << ",\"folded\":" << e.folded;
      break;
    case EventKind::kPolicingClamp:
      append_rational(os, "requested", e.weight_from);
      append_rational(os, "granted", e.weight_to);
      break;
    case EventKind::kPolicingReject:
      append_rational(os, "requested", e.weight_from);
      break;
    case EventKind::kLeaveRequest:
      os << ",\"leaves_at\":" << e.when;
      break;
    case EventKind::kDeadlineMiss:
      os << ",\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline;
      break;
    case EventKind::kProcDown:
    case EventKind::kProcUp:
    case EventKind::kQuantumOverrun:
      os << ",\"cpu\":" << e.cpu << ",\"capacity\":" << e.folded;
      break;
    case EventKind::kRequestDropped:
      break;  // kind + slot + task say it all
    case EventKind::kRequestDelayed:
      os << ",\"until\":" << e.when;
      break;
    case EventKind::kDegradeBegin:
      append_rational(os, "factor", e.value);
      os << ",\"capacity\":" << e.folded;
      break;
    case EventKind::kDegradeEnd:
      os << ",\"capacity\":" << e.folded;
      break;
    case EventKind::kQuarantine:
      os << ",\"subtask\":" << e.subtask << ",\"reason\":\""
         << json_escape(e.detail) << '"';
      break;
    case EventKind::kInvariantViolation:
      os << ",\"what\":\"" << json_escape(e.detail) << '"';
      break;
    case EventKind::kRequestEnqueue:
      os << ",\"due\":" << e.when << ",\"batch\":" << e.folded
         << ",\"target\":\"" << json_escape(e.detail) << '"';
      break;
    case EventKind::kRequestAdmit:
      os << ",\"rule\":\"" << to_string(e.rule) << '"';
      append_rational(os, "requested", e.weight_from);
      append_rational(os, "granted", e.weight_to);
      os << ",\"enacts_at\":" << e.when;
      break;
    case EventKind::kRequestReject:
      append_rational(os, "requested", e.weight_from);
      os << ",\"why\":\"" << json_escape(e.detail) << '"';
      break;
    case EventKind::kRequestShed:
      os << ",\"deadline\":" << e.when << ",\"why\":\""
         << json_escape(e.detail) << '"';
      break;
    case EventKind::kShardStep:
      os << ",\"dispatched\":" << e.folded << ",\"capacity\":" << e.b;
      break;
    case EventKind::kMigrateOut:
      os << ",\"leaves_at\":" << e.when << ",\"to_shard\":" << e.folded;
      append_rational(os, "weight", e.weight_from);
      break;
    case EventKind::kMigrateIn:
      os << ",\"from_shard\":" << e.folded;
      append_rational(os, "weight", e.weight_to);
      append_rational(os, "drift", e.value);
      break;
    case EventKind::kRebalance:
      os << ",\"moves\":" << e.folded;
      append_rational(os, "spread", e.value);
      os << ",\"trigger\":\"" << json_escape(e.detail) << '"';
      break;
    case EventKind::kNetConnOpen:
      os << ",\"conn\":" << e.folded << ",\"transport\":\""
         << json_escape(e.detail) << '"';
      break;
    case EventKind::kNetConnClose:
      os << ",\"conn\":" << e.folded << ",\"watermark\":" << e.when
         << ",\"transport\":\"" << json_escape(e.detail) << '"';
      break;
    case EventKind::kNetMalformedFrame:
      os << ",\"source\":" << e.folded << ",\"error\":\""
         << json_escape(e.detail) << '"';
      break;
    case EventKind::kPrioritySaturated:
      os << ",\"subtask\":" << e.subtask << ",\"deadline\":" << e.deadline
         << ",\"b\":" << e.b << ",\"field\":\"" << json_escape(e.detail)
         << '"';
      break;
  }
  os << '}';
  return os.str();
}

void JsonlSink::on_event(const TraceEvent& event) {
  *out_ << to_jsonl(event) << '\n';
  ++events_written_;
}

}  // namespace pfr::obs
