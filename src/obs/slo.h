/// \file slo.h
/// \brief Online SLO tracking: rolling-window p50/p99 enactment latency,
/// admission shed rate, and drift-vs-I_PS accuracy, each scored against a
/// target while the system runs.
///
/// The tracker answers, live, the question the paper answers post hoc: is
/// the reweighting pipeline enacting requests fast enough (efficiency) and
/// tracking the ideal allocation closely enough (accuracy)?  It rolls a
/// window of `SloConfig::window` slots, subdivided into kSubWindows
/// sub-windows that rotate out as time advances, so every readout covers
/// the last ~window slots with O(1) memory and no per-sample allocation.
///
/// Single-threaded by design: it lives on the consumer/coordinator thread
/// of ReweightService / Cluster (the same thread that resolves enactments
/// and merges shard events).  The live *publication* of its readouts goes
/// through TelemetryShard / the Prometheus writer, which are the
/// thread-safe layers.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/telemetry.h"
#include "pfair/types.h"

namespace pfr::obs {

struct SloConfig {
  pfair::Slot window{256};       ///< rolling window length, in slots
  double p99_target_slots{32};   ///< breach when rolling p99 exceeds this
  double shed_rate_target{0.05}; ///< breach when shed / offered exceeds this
  double drift_target{1.0};      ///< breach when mean |drift| exceeds this
  /// A dimension is kWarn above this fraction of its target (kOk below).
  double warn_fraction{0.8};
};

enum class SloState : std::uint8_t { kOk, kWarn, kBreach };

[[nodiscard]] constexpr const char* to_string(SloState s) noexcept {
  switch (s) {
    case SloState::kOk: return "ok";
    case SloState::kWarn: return "warn";
    case SloState::kBreach: return "breach";
  }
  return "?";
}

class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg = {});

  // ----- feeding (consumer thread) -----

  /// Rolls the window forward to `now`; call once per slot before feeding
  /// that slot's samples.
  void advance(pfair::Slot now);

  /// One enactment resolved: the request was due at `due` and took effect
  /// at `enacted` (latency in slots, clamped at 0).
  void observe_latency(pfair::Slot due, pfair::Slot enacted);
  void on_admitted();  ///< terminal accept (incl. clamped)
  void on_shed();      ///< terminal shed
  void on_rejected();  ///< terminal reject
  /// Latest mean |drift vs I_PS| per active task (intensive; last wins).
  void set_drift(double mean_abs_drift) noexcept { drift_ = mean_abs_drift; }

  // ----- reading -----

  struct Readout {
    double p50_latency_slots{0};
    double p99_latency_slots{0};
    std::int64_t window_enactments{0};
    double shed_rate{0};      ///< shed / (admitted + rejected + shed)
    std::int64_t window_offered{0};
    double drift_abs{0};
    SloState latency{SloState::kOk};
    SloState shed{SloState::kOk};
    SloState drift{SloState::kOk};
    /// Worst of the three dimensions: the per-shard "SLO" column.
    [[nodiscard]] SloState overall() const noexcept {
      const auto worst = [](SloState a, SloState b) {
        return static_cast<std::uint8_t>(a) > static_cast<std::uint8_t>(b)
                   ? a
                   : b;
      };
      return worst(latency, worst(shed, drift));
    }
  };
  [[nodiscard]] Readout read() const;

  [[nodiscard]] const SloConfig& config() const noexcept { return cfg_; }

 private:
  static constexpr std::size_t kSubWindows = 8;

  struct SubWindow {
    std::array<std::int64_t, kTelHistBuckets> latency{};
    std::int64_t enactments{0};
    std::int64_t admitted{0};
    std::int64_t rejected{0};
    std::int64_t shed{0};
    void clear() {
      latency.fill(0);
      enactments = admitted = rejected = shed = 0;
    }
  };

  [[nodiscard]] SloState score(double value, double target) const noexcept;

  SloConfig cfg_;
  pfair::Slot sub_len_{1};       ///< slots per sub-window
  pfair::Slot current_start_{0}; ///< slot the live sub-window opened
  std::array<SubWindow, kSubWindows> subs_;
  std::size_t live_{0};          ///< index of the live sub-window
  double drift_{0};
};

}  // namespace pfr::obs
