/// \file trace_tool.cc
/// \brief pfair-trace: filter and summarize JSONL event traces.
///
///   pfair-trace --file=out.jsonl                 # summary (default)
///   pfair-trace --file=out.jsonl --task=video    # restrict to one task
///   pfair-trace --file=out.jsonl --kind=halt --print   # dump matching lines
///   pfair-trace --file=out.jsonl --from=100 --to=200 --print
///   pfair-trace --file=out.jsonl --shard=2       # one cluster shard only
///   pfair-trace --repro=hunt-artifacts/fail-7-42 # pfair-hunt failure dir
///
/// The summary reports per-task event counts, inter-enactment gaps, and the
/// halt -> enactment latency distribution; cluster traces additionally get
/// a per-shard event breakdown and the migrate_out -> migrate_in latency
/// distribution.  See trace_analysis.h.
///
/// --repro reads a pfair-hunt failure directory: it prints the failure
/// notes (repro.txt), the minimized scenario (min.scn, falling back to
/// scenario.scn), and the flight-recorder dump's summary side by side, so
/// one command turns a CI artifact into a readable incident report.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.h"
#include "util/cli.h"

namespace {

/// Renders a pfair-hunt failure directory.  Returns an exit status.
int show_repro(const std::string& dir) {
  using namespace pfr::obs;
  const auto slurp = [](const std::string& path, std::string* out) {
    std::ifstream in{path};
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
  };

  std::string notes;
  if (slurp(dir + "/repro.txt", &notes)) {
    std::cout << "--- failure (" << dir << "/repro.txt) ---\n" << notes;
  }

  std::string scenario;
  if (slurp(dir + "/min.scn", &scenario)) {
    std::cout << "\n--- minimized scenario (" << dir << "/min.scn) ---\n"
              << scenario;
  } else if (slurp(dir + "/scenario.scn", &scenario)) {
    std::cout << "\n--- scenario (" << dir << "/scenario.scn) ---\n"
              << scenario;
  } else {
    std::cerr << dir << ": no min.scn or scenario.scn found\n";
    return 1;
  }

  std::ifstream flight{dir + "/flight.jsonl"};
  if (flight) {
    std::string error;
    const std::vector<ParsedEvent> events = read_jsonl_trace(flight, &error);
    if (!error.empty()) {
      std::cerr << dir << "/flight.jsonl: " << error << "\n";
      return 1;
    }
    std::cout << "\n--- flight recorder (" << dir << "/flight.jsonl, "
              << events.size() << " events) ---\n"
              << render_trace_summary(summarize_trace(events));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfr;
  using namespace pfr::obs;

  const CliArgs cli{argc, argv};
  const std::string file = cli.get_string("file", "");
  const std::string repro = cli.get_string("repro", "");
  const std::string task = cli.get_string("task", "");
  const std::string kind = cli.get_string("kind", "");
  const std::int64_t from = cli.get_int("from", 0);
  const std::int64_t to = cli.get_int("to", -1);
  const std::int64_t shard = cli.get_int("shard", -1);
  const bool print = cli.get_bool("print");
  if (cli.error()) {
    std::cerr << "argument error: " << *cli.error() << "\n";
    return 2;
  }
  if (!cli.unknown_flags().empty()) {
    std::cerr << "unknown flag: --" << cli.unknown_flags().front() << "\n";
    return 2;
  }
  if (!repro.empty()) return show_repro(repro);
  if (file.empty()) {
    std::cerr << "usage: pfair-trace --file=trace.jsonl [--task=NAME] "
                 "[--kind=KIND] [--from=SLOT] [--to=SLOT] [--shard=K] "
                 "[--print] | pfair-trace --repro=FAIL_DIR\n";
    return 2;
  }

  std::ifstream in{file};
  if (!in) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  std::string error;
  std::vector<ParsedEvent> events = read_jsonl_trace(in, &error);
  if (!error.empty()) {
    std::cerr << file << ": " << error << "\n";
    return 1;
  }

  std::vector<ParsedEvent> filtered;
  filtered.reserve(events.size());
  for (ParsedEvent& ev : events) {
    if (!task.empty() && ev.name != task) continue;
    if (!kind.empty() && ev.kind != kind) continue;
    if (ev.slot < from) continue;
    if (to >= 0 && ev.slot >= to) continue;
    if (shard >= 0 && ev.shard != shard) continue;
    filtered.push_back(std::move(ev));
  }

  if (print) {
    for (const ParsedEvent& ev : filtered) std::cout << ev.raw << "\n";
    std::cerr << filtered.size() << " of " << events.size()
              << " events matched\n";
    return 0;
  }
  std::cout << render_trace_summary(summarize_trace(filtered));
  return 0;
}
