/// \file flight_recorder.h
/// \brief Per-shard flight-recorder ring buffers: the last N TraceEvents,
/// dumped automatically (JSONL) on a deadline miss, invariant violation, or
/// injected fault.
///
/// Full tracing of a production run is too expensive to leave on; the
/// flight recorder is the middle ground: an EventSink that keeps only the
/// most recent `capacity` events per shard in a preallocated ring.  On a
/// trigger event (configurable kind set, default: deadline miss, invariant
/// violation, processor crash, quantum overrun, dropped request) it writes
/// the ring -- oldest to newest, trigger event included -- as JSONL in
/// exactly the JsonlSink line format, so `pfair-trace` and the golden-trace
/// tooling read dumps unchanged.  After `max_dumps` dumps the rings freeze:
/// the dump is the state *at* the incident, not whatever happened after
/// (and a post-mortem can also call dump() manually).
///
/// Concurrency: one writer per ring.  Route events by TraceEvent::shard
/// (shard -1 records into ring 0), which matches both single-engine use
/// (one thread) and cluster use, where the serial merge phase stamps shards
/// and flushes buffers in shard order on the coordinator thread.  The ring
/// write path is wait-free: a bump of an atomic sequence plus a slot
/// overwrite, no allocation after construction (entry strings reuse their
/// capacity).  dump()/events() may run concurrently with writers only at a
/// slot barrier (writers quiescent), the same discipline Cluster's merge
/// phase already enforces.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.h"

namespace pfr::obs {

struct FlightRecorderConfig {
  std::size_t capacity{256};  ///< events retained per shard ring
  /// Auto-dump target; empty disables auto-dump (manual dump() only).
  std::string dump_path;
  /// Rings freeze after this many auto-dumps (0 = never auto-dump but
  /// still record; the manual dump() always works).
  int max_dumps{1};
  /// Event kinds that fire an auto-dump.
  std::vector<EventKind> triggers{
      EventKind::kDeadlineMiss,   EventKind::kInvariantViolation,
      EventKind::kProcDown,       EventKind::kQuantumOverrun,
      EventKind::kRequestDropped,
  };
};

class FlightRecorder final : public EventSink {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg, int shards = 1);

  void on_event(const TraceEvent& event) override;

  /// Writes every ring (shard order, each oldest -> newest) as JSONL.
  /// Returns the number of lines written.
  std::size_t dump(std::ostream& out) const;
  /// dump() to `path`; false (with no partial file kept) on open failure.
  bool dump_to_file(const std::string& path) const;

  /// The retained JSONL lines of one ring, oldest first (tests/tools).
  [[nodiscard]] std::vector<std::string> lines(int shard) const;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(rings_.size());
  }
  [[nodiscard]] std::int64_t events_seen() const noexcept {
    return events_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int dumps_triggered() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool frozen() const noexcept {
    return cfg_.max_dumps > 0 &&
           dumps_.load(std::memory_order_relaxed) >= cfg_.max_dumps;
  }

 private:
  struct Ring {
    /// Serialized JSONL lines (strings own their text; capacity is reused
    /// on overwrite, so steady state allocates only when a line grows).
    std::vector<std::string> slots;
    /// Events ever recorded into this ring; slots[(seq - 1) % capacity] is
    /// the newest entry.  Atomic so a barrier-time reader sees a complete
    /// count without a lock.
    std::atomic<std::uint64_t> seq{0};
  };

  void record(Ring& ring, const TraceEvent& event);
  [[nodiscard]] bool is_trigger(EventKind kind) const noexcept;

  FlightRecorderConfig cfg_;
  std::vector<Ring> rings_;
  std::atomic<std::int64_t> events_seen_{0};
  std::atomic<int> dumps_{0};
  std::uint64_t trigger_mask_{0};  ///< bit per EventKind
};

}  // namespace pfr::obs
