#include "obs/prometheus.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pfr::obs {

namespace {

constexpr const char* kPrefix = "pfr_";

/// Counter/gauge/histogram HELP strings, indexed like the enums.
const char* counter_help(TelCounter c) {
  switch (c) {
    case TelCounter::kSlots: return "Engine slots stepped.";
    case TelCounter::kDispatched: return "Subtasks dispatched.";
    case TelCounter::kHalts: return "Rule-O halts.";
    case TelCounter::kInitiations: return "Weight-change initiations.";
    case TelCounter::kEnactments: return "Weight-change enactments.";
    case TelCounter::kMisses: return "Deadline misses.";
    case TelCounter::kDisruptions:
      return "Tasks whose slot allocation flipped at a reweight enactment.";
    case TelCounter::kFaults: return "Injected faults applied.";
    case TelCounter::kAdmitted: return "Requests admitted.";
    case TelCounter::kClamped: return "Requests admitted with a clamp.";
    case TelCounter::kRejected: return "Requests rejected.";
    case TelCounter::kShed: return "Requests shed.";
    case TelCounter::kDeferred: return "Deferred responses issued.";
    case TelCounter::kMigrationsOut: return "Migrations started (source).";
    case TelCounter::kMigrationsIn: return "Migrations completed (target).";
    case TelCounter::kNetFrames: return "Ingest wire frames decoded.";
    case TelCounter::kNetMalformed:
      return "Malformed ingest frames / protocol violations.";
    case TelCounter::kNetRingShed:
      return "Frames shed producer-side at ingest ring overflow.";
    case TelCounter::kElasticLoans:
      return "Capacity loans granted to this shard.";
    case TelCounter::kElasticRecalls:
      return "Capacity loans this shard returned (expiry/recall/recovery).";
    case TelCounter::kElasticMigrationsAvoided:
      return "Migrations made unnecessary by capacity lending.";
    case TelCounter::kCount_: break;
  }
  return "";
}

const char* gauge_help(TelGauge g) {
  switch (g) {
    case TelGauge::kTasks: return "Active member tasks.";
    case TelGauge::kQueueDepth: return "Request-queue depth.";
    case TelGauge::kLoad: return "Reserved weight (policing view).";
    case TelGauge::kCapacity: return "Alive processors.";
    case TelGauge::kDriftAbs:
      return "Mean absolute drift vs I_PS per active task.";
    case TelGauge::kNetConnections: return "Live TCP ingest connections.";
    case TelGauge::kNetRingDepth:
      return "Frames queued across all ingest rings.";
    case TelGauge::kLentOut:
      return "Capacity units this shard has out on loan.";
    case TelGauge::kBorrowed:
      return "Capacity units this shard holds from other shards.";
    case TelGauge::kCount_: break;
  }
  return "";
}

std::string label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void write_value(std::ostringstream& os, double v) {
  if (v != v) {
    os << "NaN";
  } else if (v > 1e308) {
    os << "+Inf";
  } else if (v < -1e308) {
    os << "-Inf";
  } else if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
             v < 9.2e18 && v > -9.2e18) {
    os << static_cast<std::int64_t>(v);  // counters render as integers
  } else {
    os << v;
  }
}

/// Renders `{a="x",b="y"}` from base labels + extras; empty -> "".
std::string label_set(
    const std::vector<std::pair<std::string, std::string>>& base,
    std::initializer_list<std::pair<std::string_view, std::string>> extra) {
  std::string out;
  bool first = true;
  const auto add = [&out, &first](std::string_view k, std::string_view v) {
    out += first ? "{" : ",";
    first = false;
    out += k;
    out += "=\"";
    out += label_escape(v);
    out += '"';
  };
  for (const auto& [k, v] : base) add(k, v);
  for (const auto& [k, v] : extra) add(k, v);
  if (!out.empty()) out += '}';
  return out;
}

std::string le_string(double bound) {
  std::ostringstream os;
  write_value(os, bound);
  return os.str();
}

}  // namespace

std::string render_prometheus(const TelemetrySnapshot& snap,
                              const std::vector<SloTracker::Readout>& slos,
                              const PrometheusOptions& opts) {
  std::ostringstream os;
  const auto& base = opts.labels;
  const int shards = static_cast<int>(snap.shards.size());

  const auto sample = [&os, &base](const std::string& name, double value,
                                   std::initializer_list<
                                       std::pair<std::string_view, std::string>>
                                       extra) {
    os << name << label_set(base, extra) << ' ';
    write_value(os, value);
    os << '\n';
  };

  for (std::size_t i = 0; i < kTelCounterCount; ++i) {
    const auto c = static_cast<TelCounter>(i);
    const std::string name = std::string{kPrefix} + to_string(c) + "_total";
    os << "# HELP " << name << ' ' << counter_help(c) << '\n';
    os << "# TYPE " << name << " counter\n";
    if (opts.per_shard && shards > 1) {
      for (int k = 0; k < shards; ++k) {
        sample(name, static_cast<double>(snap.shards[
                         static_cast<std::size_t>(k)].counter(c)),
               {{"shard", std::to_string(k)}});
      }
    }
    sample(name, static_cast<double>(snap.total.counter(c)), {});
  }

  for (std::size_t i = 0; i < kTelGaugeCount; ++i) {
    const auto g = static_cast<TelGauge>(i);
    const std::string name = std::string{kPrefix} + to_string(g);
    os << "# HELP " << name << ' ' << gauge_help(g) << '\n';
    os << "# TYPE " << name << " gauge\n";
    if (opts.per_shard && shards > 1) {
      for (int k = 0; k < shards; ++k) {
        sample(name, snap.shards[static_cast<std::size_t>(k)].gauge(g),
               {{"shard", std::to_string(k)}});
      }
    }
    sample(name, snap.total.gauge(g), {});
  }

  for (std::size_t i = 0; i < kTelHistCount; ++i) {
    const auto h = static_cast<TelHist>(i);
    const std::string name = std::string{kPrefix} + to_string(h);
    os << "# HELP " << name
       << " Request due to enactment latency, in slots.\n";
    os << "# TYPE " << name << " histogram\n";
    const auto emit_hist = [&](const TelemetryShard::HistData& data,
                               const std::string& shard_label) {
      std::int64_t cumulative = 0;
      for (std::size_t b = 0; b < kTelLatencyBounds.size(); ++b) {
        cumulative += data.counts[b];
        if (shard_label.empty()) {
          sample(name + "_bucket", static_cast<double>(cumulative),
                 {{"le", le_string(kTelLatencyBounds[b])}});
        } else {
          sample(name + "_bucket", static_cast<double>(cumulative),
                 {{"le", le_string(kTelLatencyBounds[b])},
                  {"shard", shard_label}});
        }
      }
      cumulative += data.counts[kTelLatencyBounds.size()];
      if (shard_label.empty()) {
        sample(name + "_bucket", static_cast<double>(cumulative),
               {{"le", "+Inf"}});
        sample(name + "_sum", data.sum, {});
        sample(name + "_count", static_cast<double>(data.total), {});
      } else {
        sample(name + "_bucket", static_cast<double>(cumulative),
               {{"le", "+Inf"}, {"shard", shard_label}});
        sample(name + "_sum", data.sum, {{"shard", shard_label}});
        sample(name + "_count", static_cast<double>(data.total),
               {{"shard", shard_label}});
      }
    };
    if (opts.per_shard && shards > 1) {
      for (int k = 0; k < shards; ++k) {
        emit_hist(snap.shards[static_cast<std::size_t>(k)].hist(h),
                  std::to_string(k));
      }
    }
    emit_hist(snap.total.hist(h), "");
  }

  // SLO readouts: rolling-window quantiles and states.  slos[k] pairs with
  // shard k; a single entry with snap covering K shards is the system view.
  if (!slos.empty()) {
    const bool per_shard = slos.size() > 1;
    os << "# HELP pfr_slo_p99_latency_slots Rolling-window p99 enactment "
          "latency.\n# TYPE pfr_slo_p99_latency_slots gauge\n";
    for (std::size_t k = 0; k < slos.size(); ++k) {
      if (per_shard) {
        sample("pfr_slo_p99_latency_slots", slos[k].p99_latency_slots,
               {{"shard", std::to_string(k)}});
      } else {
        sample("pfr_slo_p99_latency_slots", slos[k].p99_latency_slots, {});
      }
    }
    os << "# HELP pfr_slo_p50_latency_slots Rolling-window p50 enactment "
          "latency.\n# TYPE pfr_slo_p50_latency_slots gauge\n";
    for (std::size_t k = 0; k < slos.size(); ++k) {
      if (per_shard) {
        sample("pfr_slo_p50_latency_slots", slos[k].p50_latency_slots,
               {{"shard", std::to_string(k)}});
      } else {
        sample("pfr_slo_p50_latency_slots", slos[k].p50_latency_slots, {});
      }
    }
    os << "# HELP pfr_slo_shed_rate Rolling-window shed fraction of "
          "offered requests.\n# TYPE pfr_slo_shed_rate gauge\n";
    for (std::size_t k = 0; k < slos.size(); ++k) {
      if (per_shard) {
        sample("pfr_slo_shed_rate", slos[k].shed_rate,
               {{"shard", std::to_string(k)}});
      } else {
        sample("pfr_slo_shed_rate", slos[k].shed_rate, {});
      }
    }
    os << "# HELP pfr_slo_status Worst SLO dimension: 0 ok, 1 warn, 2 "
          "breach.\n# TYPE pfr_slo_status gauge\n";
    for (std::size_t k = 0; k < slos.size(); ++k) {
      const auto status = static_cast<double>(slos[k].overall());
      if (per_shard) {
        sample("pfr_slo_status", status, {{"shard", std::to_string(k)}});
      } else {
        sample("pfr_slo_status", status, {});
      }
    }
  }

  os << "# HELP pfr_wall_seconds Seconds since telemetry start.\n"
        "# TYPE pfr_wall_seconds gauge\n";
  sample("pfr_wall_seconds", snap.wall_seconds, {});
  os << "# HELP pfr_snapshot_torn_total Shards read torn after seqlock "
        "retries.\n# TYPE pfr_snapshot_torn_total counter\n";
  sample("pfr_snapshot_torn_total", snap.torn, {});
  return os.str();
}

// ----- validation & parsing -----

namespace {

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(s[0])) return false;
  for (const char c : s.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (const char c : s.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool valid_sample_value(std::string_view s) {
  if (s.empty()) return false;
  if (s == "NaN" || s == "+Inf" || s == "-Inf" || s == "Inf") return true;
  // strtod-style float; from_chars rejects leading '+', handle it.
  if (s.front() == '+') s.remove_prefix(1);
  double v = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  return ec == std::errc{} && ptr == end;
}

struct LineParse {
  std::string name;
  std::map<std::string, std::string> labels;
  std::string value;
  std::string error;
};

/// Parses one sample line `name{l="v",...} value`; false on syntax error.
bool parse_sample_line(std::string_view line, LineParse& out) {
  std::size_t i = 0;
  const std::size_t name_end = line.find_first_of("{ \t");
  if (name_end == std::string_view::npos) {
    out.error = "sample has no value";
    return false;
  }
  out.name = std::string{line.substr(0, name_end)};
  if (!valid_metric_name(out.name)) {
    out.error = "bad metric name '" + out.name + "'";
    return false;
  }
  i = name_end;
  if (line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const std::size_t eq = line.find('=', i);
      if (eq == std::string_view::npos) {
        out.error = "label without '='";
        return false;
      }
      const std::string lname{line.substr(i, eq - i)};
      if (!valid_label_name(lname)) {
        out.error = "bad label name '" + lname + "'";
        return false;
      }
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        out.error = "label value not quoted";
        return false;
      }
      std::string lvalue;
      std::size_t j = eq + 2;
      bool closed = false;
      while (j < line.size()) {
        const char c = line[j];
        if (c == '\\') {
          if (j + 1 >= line.size()) break;
          const char esc = line[j + 1];
          if (esc == 'n') {
            lvalue += '\n';
          } else if (esc == '\\' || esc == '"') {
            lvalue += esc;
          } else {
            out.error = "bad escape in label value";
            return false;
          }
          j += 2;
        } else if (c == '"') {
          closed = true;
          ++j;
          break;
        } else {
          lvalue += c;
          ++j;
        }
      }
      if (!closed) {
        out.error = "unterminated label value";
        return false;
      }
      out.labels[lname] = std::move(lvalue);
      i = j;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      out.error = "unterminated label set";
      return false;
    }
    ++i;
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  // value [timestamp] -- we accept and ignore a trailing timestamp.
  const std::size_t value_end = line.find_first_of(" \t", i);
  out.value = std::string{line.substr(
      i, value_end == std::string_view::npos ? line.size() - i
                                             : value_end - i)};
  if (!valid_sample_value(out.value)) {
    out.error = "bad sample value '" + out.value + "'";
    return false;
  }
  if (value_end != std::string_view::npos) {
    std::size_t t = value_end;
    while (t < line.size() && (line[t] == ' ' || line[t] == '\t')) ++t;
    if (t < line.size()) {
      const std::string_view ts = line.substr(t);
      std::int64_t unused = 0;
      const auto [ptr, ec] =
          std::from_chars(ts.data(), ts.data() + ts.size(), unused);
      if (ec != std::errc{} || ptr != ts.data() + ts.size()) {
        out.error = "trailing garbage after value";
        return false;
      }
    }
  }
  return true;
}

bool check_and_collect(std::string_view text,
                       std::vector<PrometheusSample>* samples,
                       std::string* error) {
  static constexpr std::string_view kTypes[] = {
      "counter", "gauge", "histogram", "summary", "untyped"};
  std::map<std::string, std::string> declared_type;
  int lineno = 0;
  std::size_t pos = 0;
  const auto fail = [error, &lineno](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type" / plain comment.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) return fail("TYPE without a type");
        const std::string name{rest.substr(0, sp)};
        const std::string_view type = rest.substr(sp + 1);
        if (!valid_metric_name(name)) {
          return fail("TYPE for bad metric name '" + name + "'");
        }
        bool known = false;
        for (const std::string_view t : kTypes) known = known || type == t;
        if (!known) return fail("unknown TYPE '" + std::string{type} + "'");
        declared_type[name] = std::string{type};
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name{
            rest.substr(0, sp == std::string_view::npos ? rest.size() : sp)};
        if (!valid_metric_name(name)) {
          return fail("HELP for bad metric name '" + name + "'");
        }
      }
      continue;
    }
    LineParse parsed;
    if (!parse_sample_line(line, parsed)) return fail(parsed.error);
    // A histogram's _bucket/_sum/_count samples belong to the declared base
    // family; resolve the declared type through the suffix.
    std::string base = parsed.name;
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (base.size() > suffix.size() &&
          base.compare(base.size() - suffix.size(), suffix.size(),
                       suffix) == 0 &&
          declared_type.count(base.substr(0, base.size() - suffix.size())) >
              0) {
        base = base.substr(0, base.size() - suffix.size());
        break;
      }
    }
    const auto it = declared_type.find(base);
    if (it != declared_type.end() && it->second == "histogram" &&
        parsed.name.size() > 7 &&
        parsed.name.compare(parsed.name.size() - 7, 7, "_bucket") == 0 &&
        parsed.labels.count("le") == 0) {
      return fail(parsed.name + " histogram bucket without an le label");
    }
    if (samples != nullptr) {
      PrometheusSample s;
      s.name = std::move(parsed.name);
      s.labels = std::move(parsed.labels);
      if (parsed.value == "NaN") {
        s.value = std::numeric_limits<double>::quiet_NaN();
      } else if (parsed.value == "+Inf" || parsed.value == "Inf") {
        s.value = std::numeric_limits<double>::infinity();
      } else if (parsed.value == "-Inf") {
        s.value = -std::numeric_limits<double>::infinity();
      } else {
        s.value = std::stod(parsed.value);
      }
      samples->push_back(std::move(s));
    }
  }
  return true;
}

}  // namespace

bool prometheus_text_valid(std::string_view text, std::string* error) {
  return check_and_collect(text, nullptr, error);
}

std::optional<std::vector<PrometheusSample>> parse_prometheus(
    std::string_view text, std::string* error) {
  std::vector<PrometheusSample> samples;
  if (!check_and_collect(text, &samples, error)) return std::nullopt;
  return samples;
}

std::string dump_prometheus(const Telemetry& telemetry,
                            const std::vector<SloTracker::Readout>& slos,
                            const PrometheusOptions& opts) {
  return render_prometheus(telemetry.snapshot(), slos, opts);
}

bool write_prometheus_file(const std::string& path, const std::string& text) {
  const std::filesystem::path target{path};
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::filesystem::path tmp{path + ".tmp"};
  {
    std::ofstream out{tmp};
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  std::filesystem::rename(tmp, target, ec);
  return !ec;
}

}  // namespace pfr::obs
