/// \file trace_analysis.h
/// \brief Offline analysis of JSONL event traces for the pfair-trace tool.
///
/// Reads back the stream JsonlSink wrote and computes the summaries that
/// make a reweighting run auditable: per-task event counts, the gaps
/// between consecutive enactments (how often a task's share actually
/// moved), and the halt -> enactment latency distribution (how long rule O
/// leaves a task without a releasable subtask).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "pfair/types.h"

namespace pfr::obs {

/// One parsed JSONL trace record.  `fields` holds every key verbatim
/// (strings unescaped); kind/slot/task/name are lifted out for convenience.
struct ParsedEvent {
  std::string kind;
  pfair::Slot slot{0};
  int task{-1};
  int shard{-1};  ///< cluster shard index; -1 when not shard-scoped
  std::string name;
  std::map<std::string, std::string> fields;
  std::string raw;  ///< the original line, for --print
};

/// Parses a JSONL stream.  Malformed lines are reported in *error (first
/// offender, 1-based line number) and parsing stops; blank lines are
/// skipped.  Returns the events parsed so far.
[[nodiscard]] std::vector<ParsedEvent> read_jsonl_trace(std::istream& in,
                                                        std::string* error);

/// Min/mean/max over a list of slot distances.
struct GapStats {
  std::int64_t count{0};
  std::int64_t min{0};
  std::int64_t max{0};
  double mean{0.0};
};

[[nodiscard]] GapStats gap_stats(const std::vector<std::int64_t>& gaps);

/// Everything the summary view prints.
struct TraceSummary {
  std::int64_t total_events{0};
  pfair::Slot first_slot{0};
  pfair::Slot last_slot{0};
  std::map<std::string, std::int64_t> by_kind;
  /// task name -> kind -> count.
  std::map<std::string, std::map<std::string, std::int64_t>> by_task;
  /// Slots between consecutive enactments of the same task, all tasks.
  std::vector<std::int64_t> enactment_gaps;
  /// Halt slot -> same task's next enactment slot, per halt.
  std::vector<std::int64_t> halt_latencies;
  /// shard index -> kind -> count, for shard-scoped events only
  /// (shard_step / migrate_out / migrate_in and anything else stamped
  /// with a shard by the cluster's merge phase).
  std::map<int, std::map<std::string, std::int64_t>> by_shard;
  /// migrate_out slot -> same task's migrate_in slot (cluster traces).
  std::vector<std::int64_t> migration_latencies;
};

[[nodiscard]] TraceSummary summarize_trace(
    const std::vector<ParsedEvent>& events);

/// Renders the summary as aligned text (the pfair-trace default output).
[[nodiscard]] std::string render_trace_summary(const TraceSummary& summary);

}  // namespace pfr::obs
