/// \file prometheus.h
/// \brief Prometheus text exposition (version 0.0.4) for the live
/// telemetry layer: a writer, a strict validator, and a small parser.
///
/// The writer renders a TelemetrySnapshot (plus optional SLO readouts and
/// extra labels) as the classic text format:
///
///   # HELP pfr_slots_total Engine slots stepped.
///   # TYPE pfr_slots_total counter
///   pfr_slots_total{shard="0"} 512
///   pfr_slots_total 4096                      <- cross-shard total
///   pfr_enact_latency_slots_bucket{le="8",shard="0"} 91
///   ...
///
/// Counters become `pfr_<name>_total` with one sample per shard plus an
/// unlabeled total; gauges become `pfr_<name>`; the latency histogram
/// becomes the standard `_bucket{le=...}/_sum/_count` triplet.  Extra
/// labels (e.g. policy="PD2-OI") are attached to every sample, which is
/// how service_throughput exposes its per-policy drift gauge.
///
/// The validator is what the acceptance test runs over --telemetry-out
/// files: line-by-line grammar (HELP/TYPE comments, metric names, quoted
/// escaped label values, float/integer sample values) with TYPE-before-use
/// checking.  The parser feeds `pfair-top`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/slo.h"
#include "obs/telemetry.h"

namespace pfr::obs {

/// Options for render_prometheus.
struct PrometheusOptions {
  /// Extra labels stamped on every sample, e.g. {{"policy", "PD2-OI"}}.
  std::vector<std::pair<std::string, std::string>> labels;
  /// Also emit per-shard samples (label shard="k"); the unlabeled
  /// cross-shard totals are always emitted.
  bool per_shard{true};
};

/// Renders `snap` (and, when given, per-shard SLO readouts: slos[k] pairs
/// with snap.shards[k]; a single-element vector describes the whole
/// system) as Prometheus text exposition.
[[nodiscard]] std::string render_prometheus(
    const TelemetrySnapshot& snap,
    const std::vector<SloTracker::Readout>& slos = {},
    const PrometheusOptions& opts = {});

/// Strict structural check of one exposition payload.  On failure returns
/// false and, when `error` is non-null, a "line N: why" message.
[[nodiscard]] bool prometheus_text_valid(std::string_view text,
                                         std::string* error = nullptr);

/// One parsed sample: name + labels + value.
struct PrometheusSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value{0};
};

/// Parses an exposition payload into samples (comments skipped).  Returns
/// nullopt when the payload fails prometheus_text_valid.
[[nodiscard]] std::optional<std::vector<PrometheusSample>> parse_prometheus(
    std::string_view text, std::string* error = nullptr);

/// Writes `text` to `path` atomically (tmp file + rename), so a concurrent
/// reader (pfair-top --watch) never sees a half-written exposition.
/// Returns false on I/O failure.
bool write_prometheus_file(const std::string& path, const std::string& text);

/// Convenience: snapshot `telemetry` and render it in one call -- the
/// "give me the current exposition" entry point for services and benches.
[[nodiscard]] std::string dump_prometheus(
    const Telemetry& telemetry,
    const std::vector<SloTracker::Readout>& slos = {},
    const PrometheusOptions& opts = {});

}  // namespace pfr::obs
