/// \file event.h
/// \brief Structured trace events emitted by the PD2 engine.
///
/// Every semantically meaningful point in the engine's per-slot pipeline --
/// task join/leave, subtask release, dispatch, halt (rule O), enactment
/// (rules I/J), drift sample, policing decision, deadline miss -- is
/// described by one TraceEvent.  Events are plain observations: emitting
/// them never perturbs scheduling (the traced schedule is bit-identical to
/// the untraced one; tests assert this).
///
/// Only the fields relevant to a given EventKind are populated; the rest
/// keep their defaults.  `task_name` is a view into the engine's task table
/// and is valid only for the duration of the EventSink::on_event call --
/// sinks that buffer must copy it.
#pragma once

#include <string_view>

#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::obs {

/// What happened.  The string forms (to_string) are the `kind` values in
/// the JSONL export and the categories in the Chrome trace.
enum class EventKind : std::uint8_t {
  kTaskJoin,        ///< a task's release chain started
  kSubtaskRelease,  ///< T_j released (normal chain or enactment)
  kDispatch,        ///< PD2 gave T_j the slot on some processor lane
  kHalt,            ///< rule O halted the last-released subtask
  kInitiation,      ///< a weight change was initiated (rule chosen)
  kEnactment,       ///< a pending weight change was enacted
  kDriftSample,     ///< drift sampled at a generation start (Eqn. (5))
  kPolicingClamp,   ///< admission control reduced a requested weight
  kPolicingReject,  ///< admission control refused a requested weight
  kLeaveRequest,    ///< rule L: the task will leave once its window closes
  kDeadlineMiss,    ///< T_j's deadline passed unscheduled
  // --- fault injection & graceful degradation (pfair/fault.h) ---
  kProcDown,            ///< a processor crashed; capacity shrank
  kProcUp,              ///< a processor recovered; capacity grew
  kQuantumOverrun,      ///< a processor was stolen for one slot
  kRequestDropped,      ///< a queued reweight/leave request was lost
  kRequestDelayed,      ///< ... was postponed to a later slot
  kDegradeBegin,        ///< capacity < total weight: degradation engaged
  kDegradeEnd,          ///< capacity recovered: nominal weights restored
  kQuarantine,          ///< a task was quarantined (violation policy)
  kInvariantViolation,  ///< validate-mode check failed (policy != throw)
  // --- online request serving (src/serve) ---
  kRequestEnqueue,  ///< a client request entered the slot batch
  kRequestAdmit,    ///< admission accepted (possibly clamping) a request
  kRequestReject,   ///< admission refused a request
  kRequestShed,     ///< a request was shed (deadline passed / overflow)
  // --- sharded cluster (src/cluster) ---
  kShardStep,   ///< one shard finished its slot (merged in shard order)
  kMigrateOut,  ///< rule L initiated on the source shard for a migration
  kMigrateIn,   ///< the task's join completed on the target shard
  kRebalance,   ///< the rebalancer fired and queued a move set
  // --- multi-process front door (src/net) ---
  kNetConnOpen,        ///< a TCP ingest connection registered with the mux
  kNetConnClose,       ///< an ingest source finished (bye / close)
  kNetMalformedFrame,  ///< a wire frame failed to decode (or broke protocol)
  // --- window saturation (pfair/windows.h, PR 9) ---
  kPrioritySaturated,  ///< a released window clamped at kSlotSaturated
};

inline constexpr int kEventKindCount = 32;

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTaskJoin: return "task_join";
    case EventKind::kSubtaskRelease: return "subtask_release";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kHalt: return "halt";
    case EventKind::kInitiation: return "initiation";
    case EventKind::kEnactment: return "enactment";
    case EventKind::kDriftSample: return "drift_sample";
    case EventKind::kPolicingClamp: return "policing_clamp";
    case EventKind::kPolicingReject: return "policing_reject";
    case EventKind::kLeaveRequest: return "leave_request";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kProcDown: return "proc_down";
    case EventKind::kProcUp: return "proc_up";
    case EventKind::kQuantumOverrun: return "overrun";
    case EventKind::kRequestDropped: return "request_dropped";
    case EventKind::kRequestDelayed: return "request_delayed";
    case EventKind::kDegradeBegin: return "degrade_begin";
    case EventKind::kDegradeEnd: return "degrade_end";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kInvariantViolation: return "invariant_violation";
    case EventKind::kRequestEnqueue: return "request_enqueue";
    case EventKind::kRequestAdmit: return "request_admit";
    case EventKind::kRequestReject: return "request_reject";
    case EventKind::kRequestShed: return "request_shed";
    case EventKind::kShardStep: return "shard_step";
    case EventKind::kMigrateOut: return "migrate_out";
    case EventKind::kMigrateIn: return "migrate_in";
    case EventKind::kRebalance: return "rebalance";
    case EventKind::kNetConnOpen: return "net_conn_open";
    case EventKind::kNetConnClose: return "net_conn_close";
    case EventKind::kNetMalformedFrame: return "net_malformed_frame";
    case EventKind::kPrioritySaturated: return "priority_saturated";
  }
  return "?";
}

/// One engine observation.  Field use by kind:
///   task_join:        weight_to (joining weight)
///   subtask_release:  subtask, deadline, b
///   dispatch:         subtask, deadline, b, cpu
///   halt:             subtask (halt time is `slot`)
///   initiation:       rule, weight_from (swt), weight_to (policed target)
///   enactment:        rule, weight_to
///   drift_sample:     value (the drift), folded (initiations folded in)
///   policing_clamp:   weight_from (requested), weight_to (granted)
///   policing_reject:  weight_from (requested)
///   leave_request:    when (the rule-L leave time)
///   deadline_miss:    subtask, deadline
///   proc_down/proc_up/overrun: cpu (the processor), folded (capacity after)
///   request_dropped:  (task identifies the owner of the lost request)
///   request_delayed:  when (the postponed due slot)
///   degrade_begin:    value (compression factor), folded (capacity)
///   degrade_end:      folded (restored capacity)
///   quarantine:       subtask (last released, 0 if none), detail (reason)
///   invariant_violation: detail (the check's message)
///   request_enqueue:  when (the request's due slot), folded (batch size),
///                     detail (target task name)
///   request_admit:    rule (forecast rule), weight_from (requested),
///                     weight_to (granted), when (forecast enactment slot)
///   request_reject:   weight_from (requested), detail (reason)
///   request_shed:     when (the request's deadline), detail (reason)
///   shard_step:       shard, folded (tasks dispatched), b (capacity)
///   migrate_out:      shard (source), task (source-local id), when (the
///                     rule-L leave slot), weight_from (migrated weight),
///                     folded (target shard)
///   migrate_in:       shard (target), task (target-local id), weight_to
///                     (migrated weight), value (drift charged),
///                     folded (source shard)
///   rebalance:        folded (moves queued), value (normalized-load
///                     spread), detail (trigger: "imbalance"/"overload")
///   net_conn_open:    folded (the source's queue-producer id), detail
///                     ("tcp")
///   net_conn_close:   folded (queue-producer id), when (the source's
///                     final watermark), detail ("tcp"/"ring")
///   net_malformed_frame: folded (queue-producer id; -1 pre-registration),
///                     detail (the typed wire diagnostic, net::describe)
///   priority_saturated: subtask, deadline (clamped), b (exact),
///                     detail ("window"/"group_deadline")
struct TraceEvent {
  EventKind kind{EventKind::kTaskJoin};
  pfair::Slot slot{0};              ///< engine time of the observation
  pfair::TaskId task{-1};           ///< -1 when not task-scoped
  std::string_view task_name{};     ///< valid only during on_event
  pfair::SubtaskIndex subtask{0};   ///< 1-based j; 0 when n/a
  pfair::Slot deadline{pfair::kNever};
  int b{-1};                        ///< b-bit; -1 when n/a
  int cpu{-1};                      ///< dispatch lane in [0, M); -1 when n/a
  pfair::RuleApplied rule{pfair::RuleApplied::kNone};
  Rational weight_from;
  Rational weight_to;
  Rational value;                   ///< drift for kDriftSample
  pfair::Slot when{pfair::kNever};  ///< leave time for kLeaveRequest
  int folded{0};                    ///< events folded into a drift sample
  int shard{-1};                    ///< cluster shard index; -1 when the
                                    ///< event is not shard-scoped
  std::string_view detail{};        ///< violation/quarantine reason; same
                                    ///< lifetime caveat as task_name
};

}  // namespace pfr::obs
