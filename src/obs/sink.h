/// \file sink.h
/// \brief EventSink: where TraceEvents go.
#pragma once

#include <vector>

#include "obs/event.h"

namespace pfr::obs {

/// Consumer of engine trace events.  on_event is called synchronously from
/// the engine's slot loop; implementations must not touch the engine and
/// must copy `task_name` if they buffer the event.  A sink is attached to
/// exactly one engine at a time (none of the bundled sinks lock).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  /// Called when the producer is done (end of run / detach).  Sinks that
  /// buffer (e.g. the Chrome exporter) write their output here.
  virtual void flush() {}
};

/// Fans one event stream out to several sinks, in attachment order.
class TeeSink final : public EventSink {
 public:
  void attach(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }

  void on_event(const TraceEvent& event) override {
    for (EventSink* s : sinks_) s->on_event(event);
  }
  void flush() override {
    for (EventSink* s : sinks_) s->flush();
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace pfr::obs
