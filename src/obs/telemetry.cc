#include "obs/telemetry.h"

#include <chrono>
#include <cmath>

namespace pfr::obs {

const char* to_string(TelCounter c) noexcept {
  switch (c) {
    case TelCounter::kSlots: return "slots";
    case TelCounter::kDispatched: return "dispatched";
    case TelCounter::kHalts: return "halts";
    case TelCounter::kInitiations: return "initiations";
    case TelCounter::kEnactments: return "enactments";
    case TelCounter::kMisses: return "deadline_misses";
    case TelCounter::kDisruptions: return "disruptions";
    case TelCounter::kFaults: return "faults";
    case TelCounter::kAdmitted: return "requests_admitted";
    case TelCounter::kClamped: return "requests_clamped";
    case TelCounter::kRejected: return "requests_rejected";
    case TelCounter::kShed: return "requests_shed";
    case TelCounter::kDeferred: return "requests_deferred";
    case TelCounter::kMigrationsOut: return "migrations_out";
    case TelCounter::kMigrationsIn: return "migrations_in";
    case TelCounter::kNetFrames: return "net_frames";
    case TelCounter::kNetMalformed: return "net_malformed";
    case TelCounter::kNetRingShed: return "net_ring_shed";
    case TelCounter::kElasticLoans: return "elastic_loans";
    case TelCounter::kElasticRecalls: return "elastic_recalls";
    case TelCounter::kElasticMigrationsAvoided:
      return "elastic_migrations_avoided";
    case TelCounter::kCount_: break;
  }
  return "?";
}

const char* to_string(TelGauge g) noexcept {
  switch (g) {
    case TelGauge::kTasks: return "tasks";
    case TelGauge::kQueueDepth: return "queue_depth";
    case TelGauge::kLoad: return "load";
    case TelGauge::kCapacity: return "capacity";
    case TelGauge::kDriftAbs: return "drift_abs";
    case TelGauge::kNetConnections: return "net_connections";
    case TelGauge::kNetRingDepth: return "net_ring_depth";
    case TelGauge::kLentOut: return "elastic_lent_out";
    case TelGauge::kBorrowed: return "elastic_borrowed";
    case TelGauge::kCount_: break;
  }
  return "?";
}

const char* to_string(TelHist h) noexcept {
  switch (h) {
    case TelHist::kEnactLatency: return "enact_latency_slots";
    case TelHist::kCount_: break;
  }
  return "?";
}

void TelemetryShard::observe(TelHist h, double value) noexcept {
  LockFreeHist& hist = hists_[static_cast<std::size_t>(h)];
  std::size_t i = 0;
  while (i < kTelLatencyBounds.size() && value > kTelLatencyBounds[i]) ++i;
  hist.counts[i].fetch_add(1, std::memory_order_relaxed);
  hist.total.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> (C++20) keeps sum exact under concurrency.
  hist.sum.fetch_add(value, std::memory_order_relaxed);
}

double TelemetryShard::HistData::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  auto rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < kTelLatencyBounds.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return kTelLatencyBounds[i];
  }
  return std::numeric_limits<double>::infinity();
}

TelemetryShard::HistData TelemetryShard::hist(TelHist h) const noexcept {
  const LockFreeHist& src = hists_[static_cast<std::size_t>(h)];
  HistData out;
  for (std::size_t i = 0; i < kTelHistBuckets; ++i) {
    out.counts[i] = src.counts[i].load(std::memory_order_relaxed);
  }
  out.total = src.total.load(std::memory_order_relaxed);
  out.sum = src.sum.load(std::memory_order_relaxed);
  return out;
}

void ShardSnapshot::merge(const ShardSnapshot& other) {
  for (std::size_t i = 0; i < kTelCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  // Extensive gauges add; kDriftAbs is intensive (a mean) and is averaged
  // by Telemetry::snapshot once all shards are in.
  for (std::size_t i = 0; i < kTelGaugeCount; ++i) {
    gauges[i] += other.gauges[i];
  }
  for (std::size_t h = 0; h < kTelHistCount; ++h) {
    for (std::size_t i = 0; i < kTelHistBuckets; ++i) {
      hists[h].counts[i] += other.hists[h].counts[i];
    }
    hists[h].total += other.hists[h].total;
    hists[h].sum += other.hists[h].sum;
  }
}

Telemetry::Telemetry(int shards) : start_(std::chrono::steady_clock::now()) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    shards_.push_back(std::make_unique<TelemetryShard>());
  }
}

namespace {

/// One attempt at a consistent copy: version (even) -> data -> version
/// unchanged.  Returns false when the shard was caught mid-publish.
bool try_capture(const TelemetryShard& shard, ShardSnapshot& out,
                 bool force = false) {
  const std::uint64_t v1 = shard.version();
  if (!force && (v1 & 1u) != 0) return false;
  for (std::size_t i = 0; i < kTelCounterCount; ++i) {
    out.counters[i] = shard.counter(static_cast<TelCounter>(i));
  }
  for (std::size_t i = 0; i < kTelGaugeCount; ++i) {
    out.gauges[i] = shard.gauge(static_cast<TelGauge>(i));
  }
  for (std::size_t h = 0; h < kTelHistCount; ++h) {
    out.hists[h] = shard.hist(static_cast<TelHist>(h));
  }
  out.version = v1;
  return shard.version() == v1;
}

}  // namespace

TelemetrySnapshot Telemetry::snapshot(int retries) const {
  TelemetrySnapshot snap;
  snap.shards.resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    bool clean = false;
    for (int attempt = 0; attempt <= retries && !clean; ++attempt) {
      clean = try_capture(*shards_[k], snap.shards[k]);
    }
    if (!clean) {
      // Retries exhausted: accept the torn read.  Each field is its own
      // atomic, so the copy is monotone and well-formed -- just not
      // guaranteed consistent at one slot boundary.
      ++snap.torn;
      (void)try_capture(*shards_[k], snap.shards[k], /*force=*/true);
    }
    snap.total.merge(snap.shards[k]);
  }
  if (!shards_.empty()) {
    snap.total.gauges[static_cast<std::size_t>(TelGauge::kDriftAbs)] /=
        static_cast<double>(shards_.size());
  }
  snap.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  return snap;
}

}  // namespace pfr::obs
