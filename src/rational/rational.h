/// \file rational.h
/// \brief Exact rational arithmetic on checked 64-bit integers.
///
/// Pfair scheduling theory is stated entirely in exact fractions: task
/// weights such as 3/19, per-slot ideal allocations such as 32/95, lag and
/// drift values such as -3/20.  Reproducing the paper's worked examples and
/// proving invariants in tests requires *exact* arithmetic -- floating point
/// would accumulate error over thousands of slots.  This class provides a
/// canonical (normalized) rational with __int128 intermediates and overflow
/// checks, throwing pfr::RationalOverflow when a value leaves the 64-bit
/// range after normalization.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <stdexcept>
#include <string>

namespace pfr {

/// Thrown when a rational operation overflows the canonical 64-bit range.
class RationalOverflow : public std::overflow_error {
 public:
  RationalOverflow() : std::overflow_error("pfr::Rational overflow") {}
};

/// Thrown on construction or division with a zero denominator.
class RationalDivideByZero : public std::domain_error {
 public:
  RationalDivideByZero() : std::domain_error("pfr::Rational divide by zero") {}
};

/// A canonical rational number num/den with den > 0 and gcd(|num|, den) = 1.
///
/// All operations are exact; intermediates use 128-bit arithmetic and the
/// normalized result is range-checked.  The class is a regular value type
/// (trivially copyable, totally ordered, hashable via num()/den()).
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// Implicit conversion from an integer: n/1.  Implicit by design so that
  /// expressions like `alloc < 1` read like the paper.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT

  /// n/d, normalized.  Throws RationalDivideByZero if d == 0.
  constexpr Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) {
    if (den_ == 0) throw RationalDivideByZero{};
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return num_ == 0; }
  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }

  /// Sign: -1, 0, or +1.
  [[nodiscard]] constexpr int sign() const noexcept {
    return (num_ > 0) - (num_ < 0);
  }

  [[nodiscard]] constexpr Rational abs() const noexcept {
    Rational r = *this;
    if (r.num_ < 0) r.num_ = -r.num_;
    return r;
  }

  /// floor(num/den) as an integer (mathematical floor, correct for negatives).
  [[nodiscard]] constexpr std::int64_t floor() const noexcept {
    std::int64_t q = num_ / den_;
    if (num_ % den_ != 0 && num_ < 0) --q;
    return q;
  }

  /// ceil(num/den) as an integer (mathematical ceiling).
  [[nodiscard]] constexpr std::int64_t ceil() const noexcept {
    std::int64_t q = num_ / den_;
    if (num_ % den_ != 0 && num_ > 0) ++q;
    return q;
  }

  /// Lossy conversion for reporting only; never used in scheduling decisions.
  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Reciprocal.  Throws RationalDivideByZero when zero.
  [[nodiscard]] constexpr Rational inverse() const {
    if (num_ == 0) throw RationalDivideByZero{};
    Rational r;
    r.num_ = den_;
    r.den_ = num_;
    if (r.den_ < 0) {
      r.num_ = -r.num_;
      r.den_ = -r.den_;
    }
    return r;
  }

  friend constexpr Rational operator+(const Rational& a, const Rational& b) {
    const I128 n = I128{a.num_} * b.den_ + I128{b.num_} * a.den_;
    const I128 d = I128{a.den_} * b.den_;
    return make_checked(n, d);
  }
  friend constexpr Rational operator-(const Rational& a, const Rational& b) {
    const I128 n = I128{a.num_} * b.den_ - I128{b.num_} * a.den_;
    const I128 d = I128{a.den_} * b.den_;
    return make_checked(n, d);
  }
  friend constexpr Rational operator*(const Rational& a, const Rational& b) {
    return make_checked(I128{a.num_} * b.num_, I128{a.den_} * b.den_);
  }
  friend constexpr Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw RationalDivideByZero{};
    return make_checked(I128{a.num_} * b.den_, I128{a.den_} * b.num_);
  }
  constexpr Rational operator-() const noexcept {
    Rational r = *this;
    r.num_ = -r.num_;
    return r;
  }

  constexpr Rational& operator+=(const Rational& o) { return *this = *this + o; }
  constexpr Rational& operator-=(const Rational& o) { return *this = *this - o; }
  constexpr Rational& operator*=(const Rational& o) { return *this = *this * o; }
  constexpr Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend constexpr std::strong_ordering operator<=>(const Rational& a,
                                                    const Rational& b) noexcept {
    const I128 lhs = I128{a.num_} * b.den_;
    const I128 rhs = I128{b.num_} * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// "num/den", or just "num" for integers.
  [[nodiscard]] std::string to_string() const;

 private:
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
  using I128 = __int128;  // GCC/Clang extension; fine for our toolchains
#pragma GCC diagnostic pop

  static constexpr Rational make_checked(I128 n, I128 d) {
    if (d == 0) throw RationalDivideByZero{};
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const I128 g = gcd128(n < 0 ? -n : n, d);
    if (g > 1) {
      n /= g;
      d /= g;
    }
    constexpr I128 kMax = INT64_MAX;
    constexpr I128 kMin = INT64_MIN;
    if (n > kMax || n < kMin || d > kMax) throw RationalOverflow{};
    Rational r;
    r.num_ = static_cast<std::int64_t>(n);
    r.den_ = static_cast<std::int64_t>(d);
    return r;
  }

  static constexpr I128 gcd128(I128 a, I128 b) noexcept {
    while (b != 0) {
      const I128 t = a % b;
      a = b;
      b = t;
    }
    return a == 0 ? 1 : a;
  }

  std::int64_t num_{0};
  std::int64_t den_{1};
};

/// Convenience factory mirroring the paper's "e/p" weight notation.
[[nodiscard]] constexpr Rational rat(std::int64_t num, std::int64_t den = 1) {
  return Rational{num, den};
}

[[nodiscard]] constexpr Rational min(const Rational& a, const Rational& b) {
  return b < a ? b : a;
}
[[nodiscard]] constexpr Rational max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

namespace detail {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using Int128 = __int128;  // GCC/Clang extension; fine for our toolchains
#pragma GCC diagnostic pop

/// Mathematical floor of n/d for d > 0 (C++ division truncates toward zero).
[[nodiscard]] constexpr Int128 floor128(Int128 n, Int128 d) noexcept {
  Int128 q = n / d;
  if (n % d != 0 && n < 0) --q;
  return q;
}

/// Mathematical ceiling of n/d for d > 0.
[[nodiscard]] constexpr Int128 ceil128(Int128 n, Int128 d) noexcept {
  Int128 q = n / d;
  if (n % d != 0 && n > 0) ++q;
  return q;
}

/// Range-checks a 128-bit quotient back into the 64-bit slot domain.
[[nodiscard]] constexpr std::int64_t narrow_checked(Int128 q) {
  constexpr Int128 kMax = INT64_MAX;
  constexpr Int128 kMin = INT64_MIN;
  if (q > kMax || q < kMin) throw RationalOverflow{};
  return static_cast<std::int64_t>(q);
}

}  // namespace detail

/// floor(k / w) for integer k and rational w, as used by the window formulas
/// floor((i-1)/wt(T)).
///
/// Integer fast path: k/w = k*den/num, so one 128-bit multiply and one
/// 128-bit division produce the exact mathematical floor -- no gcd
/// normalization, no canonical-form overflow check on the intermediate
/// fraction.  Bit-identical to the rational reference (Rational{k}/w).floor()
/// wherever that succeeds, and additionally exact on long horizons where the
/// intermediate k*den/num leaves the canonical 64-bit range even though the
/// quotient fits (the reference throws RationalOverflow there).  Throws
/// RationalOverflow only when the *result* cannot be represented as a Slot.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t k, const Rational& w) {
  if (w.num() == 0) throw RationalDivideByZero{};
  detail::Int128 n = detail::Int128{k} * w.den();
  detail::Int128 d = w.num();
  if (d < 0) {
    n = -n;
    d = -d;
  }
  return detail::narrow_checked(detail::floor128(n, d));
}

/// ceil(k / w) for integer k and rational w, as used by ceil(i/wt(T)).
/// Same integer fast path (and overflow contract) as floor_div.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t k, const Rational& w) {
  if (w.num() == 0) throw RationalDivideByZero{};
  detail::Int128 n = detail::Int128{k} * w.den();
  detail::Int128 d = w.num();
  if (d < 0) {
    n = -n;
    d = -d;
  }
  return detail::narrow_checked(detail::ceil128(n, d));
}

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace pfr
