#include "rational/rational.h"

#include <ostream>

namespace pfr {

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace pfr
