#include "serve/service.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/event.h"
#include "pfair/task.h"

namespace pfr::serve {

using obs::EventKind;
using obs::TraceEvent;
using pfair::kNever;
using pfair::RuleApplied;
using pfair::Slot;
using pfair::TaskId;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

/// Latency histogram buckets, in slots from due to enactment.
const std::vector<double> kLatencyBounds{0, 1, 2, 4, 8, 16, 32, 64, 128};

}  // namespace

ReweightService::ReweightService(ServiceConfig cfg)
    : cfg_(cfg),
      engine_(cfg.engine),
      queue_(cfg.queue_capacity),
      admission_(engine_, AdmissionConfig{cfg.max_defer}) {}

TaskId ReweightService::seed_task(const std::string& name,
                                  const Rational& weight, int rank) {
  if (ids_.count(name) != 0) {
    throw std::invalid_argument("seed_task: duplicate task name " + name);
  }
  const TaskId id = engine_.add_task(weight, engine_.now(), name);
  if (rank != 0) engine_.set_tie_rank(id, rank);
  ids_.emplace(name, id);
  return id;
}

void ReweightService::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  engine_.set_metrics(registry);
  latency_hist_ =
      registry != nullptr
          ? &registry->histogram("serve.latency_slots", kLatencyBounds)
          : nullptr;
}

void ReweightService::record_response(const Response& resp) {
  switch (resp.decision) {
    case Decision::kAccepted: ++stats_.admitted; break;
    case Decision::kClamped: ++stats_.clamped; break;
    case Decision::kRejected: ++stats_.rejected; break;
    case Decision::kDeferred: ++stats_.deferred; break;
    case Decision::kShed: ++stats_.shed; break;
  }
  if (slo_ != nullptr) {
    switch (resp.decision) {
      case Decision::kAccepted:
      case Decision::kClamped: slo_->on_admitted(); break;
      case Decision::kRejected: slo_->on_rejected(); break;
      case Decision::kShed: slo_->on_shed(); break;
      case Decision::kDeferred: break;  // not terminal
    }
  }
  responses_.push_back(resp);
}

void ReweightService::respond_shed(const Request& r, Slot t, const char* why) {
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.decision = Decision::kShed;
  resp.slot = t;
  resp.due = r.due;
  resp.reason = why;
  record_response(resp);
  if (tracer_.enabled()) {
    TraceEvent ev;
    ev.kind = EventKind::kRequestShed;
    ev.slot = t;
    ev.when = r.deadline;
    ev.detail = why;
    const auto it = ids_.find(r.task);
    if (it != ids_.end()) ev.task = it->second;
    tracer_.emit(ev);
  }
}

bool ReweightService::serve_one(const Request& r, Slot t, int& oi_used) {
  Response resp = admission_.decide(r, ids_, t, oi_used);

  if (resp.decision == Decision::kDeferred) {
    // Out of retry budget?  The capacity the request waited for never came.
    if (t - r.due >= cfg_.max_defer) {
      resp.decision = Decision::kRejected;
      resp.reason += "; defer window exhausted";
    } else {
      const bool already =
          std::find(deferred_notified_.begin(), deferred_notified_.end(),
                    r.id) != deferred_notified_.end();
      if (!already) {
        deferred_notified_.push_back(r.id);
        record_response(resp);
        if (tracer_.enabled()) {
          TraceEvent ev;
          ev.kind = EventKind::kRequestDelayed;
          ev.slot = t;
          ev.task = resp.task;
          ev.when = t + 1;
          tracer_.emit(ev);
        }
      }
      deferred_.push_back(r);
      return false;
    }
  }

  std::erase(deferred_notified_, r.id);  // terminal from here on

  if (resp.decision == Decision::kRejected) {
    record_response(resp);
    if (tracer_.enabled()) {
      TraceEvent ev;
      ev.kind = EventKind::kRequestReject;
      ev.slot = t;
      ev.task = resp.task;
      ev.weight_from = r.weight;
      ev.detail = resp.reason;
      tracer_.emit(ev);
    }
    return true;
  }

  // Accepted or clamped: apply to the engine.  The granted weight already
  // passed preview_admission, so the engine's own policing concurs.
  switch (r.kind) {
    case RequestKind::kJoin: {
      const TaskId id = engine_.add_task(resp.granted, t, r.task);
      if (r.rank != 0) engine_.set_tie_rank(id, r.rank);
      ids_.emplace(r.task, id);
      resp.task = id;
      break;
    }
    case RequestKind::kReweight: {
      engine_.request_weight_change(resp.task, resp.granted, t);
      if (resp.rule == RuleApplied::kRuleO ||
          resp.rule == RuleApplied::kRuleIIncrease ||
          resp.rule == RuleApplied::kRuleIDecrease) {
        ++oi_used;
      }
      // The forecast slot may be exact or kNever (gate unknown); either
      // way the enactment-count watch below replaces it with the real slot.
      unresolved_.push_back(PendingEnactment{
          responses_.size(), resp.task,
          engine_.task(resp.task).enactment_count});
      break;
    }
    case RequestKind::kLeave:
      engine_.request_leave(resp.task, t);
      break;
    case RequestKind::kQuery:
      break;  // pure read; the response already carries swt and drift
  }

  if (tracer_.enabled()) {
    TraceEvent ev;
    ev.kind = EventKind::kRequestAdmit;
    ev.slot = t;
    ev.task = resp.task;
    ev.rule = resp.rule;
    ev.weight_from = r.weight;
    ev.weight_to = resp.granted;
    ev.when = resp.enact_slot;
    tracer_.emit(ev);
  }
  record_response(resp);
  return true;
}

void ReweightService::resolve_enactments(Slot t) {
  auto keep = unresolved_.begin();
  for (auto it = unresolved_.begin(); it != unresolved_.end(); ++it) {
    const pfair::TaskState& task = engine_.task(it->task);
    if (task.enactment_count > it->count_at_apply) {
      Response& resp = responses_.at(it->response_index);
      resp.enact_slot = t;
      if (latency_hist_ != nullptr) {
        latency_hist_->observe(static_cast<double>(t - resp.due));
      }
      if (telemetry_ != nullptr) {
        telemetry_->observe(obs::TelHist::kEnactLatency,
                            static_cast<double>(t - resp.due));
      }
      if (slo_ != nullptr) slo_->observe_latency(resp.due, t);
    } else {
      *keep++ = *it;
    }
  }
  unresolved_.erase(keep, unresolved_.end());
}

bool ReweightService::run_slot() {
  const Slot t = engine_.now();
  if (slo_ != nullptr) slo_->advance(t);
  RequestQueue::Batch batch = queue_.drain_slot(t);
  ++stats_.batches;

  for (const Request& r : batch.shed_deadline) {
    respond_shed(r, t, "deadline passed in queue");
  }
  for (const Request& r : batch.shed_overflow) {
    respond_shed(r, t, "queue overflow");
  }

  if (tracer_.enabled()) {
    for (const Request& r : batch.admit) {
      TraceEvent ev;
      ev.kind = EventKind::kRequestEnqueue;
      ev.slot = t;
      ev.when = r.due;
      ev.folded = static_cast<int>(batch.admit.size());
      ev.detail = r.task;
      const auto it = ids_.find(r.task);
      if (it != ids_.end()) ev.task = it->second;
      tracer_.emit(ev);
    }
  }

  // Retry-first: deferred requests carry earlier ids than anything newly
  // due (ids are assigned in due order), so an id-sorted merge serves the
  // oldest waiters first -- capacity freed this slot goes to them.
  std::vector<Request> work = std::move(deferred_);
  deferred_.clear();
  work.insert(work.end(), std::make_move_iterator(batch.admit.begin()),
              std::make_move_iterator(batch.admit.end()));
  std::sort(work.begin(), work.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });

  int oi_used = 0;
  for (const Request& r : work) {
    if (r.deadline < t) {
      respond_shed(r, t, "deadline passed while deferred");
      continue;
    }
    serve_one(r, t, oi_used);
  }

  engine_.step();
  resolve_enactments(t);

  if (telemetry_ != nullptr) publish_telemetry();
  if (slo_ != nullptr) slo_->set_drift(engine_.mean_abs_drift());

  if (metrics_ != nullptr) {
    metrics_->set_gauge("serve.queue.depth",
                        static_cast<double>(queue_.depth()));
    metrics_->counter("serve.requests.batched")
        .add(static_cast<std::int64_t>(work.size()));
  }
  return batch.open || !deferred_.empty();
}

void ReweightService::publish_telemetry() {
  using obs::TelCounter;
  using obs::TelGauge;
  obs::TelemetryShard& shard = *telemetry_;
  const ServiceStats& cur = stats_;
  const ServiceStats& prev = tel_prev_stats_;
  const auto delta = [](std::uint64_t now, std::uint64_t before) {
    return static_cast<std::int64_t>(now - before);
  };
  // The engine already ran its own begin/end section inside step(); this
  // second short section publishes the serve-side deltas for the same slot.
  shard.begin_slot();
  shard.add(TelCounter::kAdmitted, delta(cur.admitted, prev.admitted));
  shard.add(TelCounter::kClamped, delta(cur.clamped, prev.clamped));
  shard.add(TelCounter::kRejected, delta(cur.rejected, prev.rejected));
  shard.add(TelCounter::kShed, delta(cur.shed, prev.shed));
  shard.add(TelCounter::kDeferred, delta(cur.deferred, prev.deferred));
  shard.set(TelGauge::kQueueDepth, static_cast<double>(queue_.depth()));
  shard.end_slot();
  tel_prev_stats_ = stats_;
}

void ReweightService::run_to_completion(Slot grace) {
  while (run_slot()) {
  }
  for (Slot g = 0; g < grace && !unresolved_.empty(); ++g) {
    const Slot t = engine_.now();
    if (slo_ != nullptr) slo_->advance(t);
    engine_.step();
    resolve_enactments(t);
    if (telemetry_ != nullptr) publish_telemetry();
  }
  if (metrics_ != nullptr) {
    metrics_->counter("serve.responses.admitted")
        .add(static_cast<std::int64_t>(stats_.admitted));
    metrics_->counter("serve.responses.clamped")
        .add(static_cast<std::int64_t>(stats_.clamped));
    metrics_->counter("serve.responses.rejected")
        .add(static_cast<std::int64_t>(stats_.rejected));
    metrics_->counter("serve.responses.deferred")
        .add(static_cast<std::int64_t>(stats_.deferred));
    metrics_->counter("serve.responses.shed")
        .add(static_cast<std::int64_t>(stats_.shed));
    metrics_->counter("serve.batches")
        .add(static_cast<std::int64_t>(stats_.batches));
  }
}

std::uint64_t ReweightService::response_digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const Response& r : responses_) {
    fnv_mix(h, r.id);
    fnv_mix(h, static_cast<std::uint64_t>(r.kind));
    fnv_mix(h, static_cast<std::uint64_t>(r.decision));
    fnv_mix(h, static_cast<std::uint64_t>(r.granted.num()));
    fnv_mix(h, static_cast<std::uint64_t>(r.granted.den()));
    fnv_mix(h, static_cast<std::uint64_t>(r.enact_slot));
    fnv_mix(h, static_cast<std::uint64_t>(r.slot));
  }
  return h;
}

}  // namespace pfr::serve
