#include "serve/admission.h"

#include "pfair/subtask.h"
#include "pfair/task.h"
#include "pfair/weight.h"

namespace pfr::serve {

using pfair::kMaxWeight;
using pfair::kNever;
using pfair::PolicingMode;
using pfair::RuleApplied;
using pfair::Slot;
using pfair::TaskId;
using pfair::TaskState;

namespace {

/// The accuracy price of the forecast rule, per the paper: O/I keep drift
/// within two quanta (Theorem 5); a leave/join accrues roughly the lost
/// allocation between initiation and enactment, |Dw| per delayed slot
/// (Theorem 3 gives no constant bound).
Rational estimate_drift(RuleApplied rule, Slot due, Slot enact,
                        const Rational& from, const Rational& to) {
  switch (rule) {
    case RuleApplied::kNone:
      return Rational{0};
    case RuleApplied::kBetween:
    case RuleApplied::kRuleO:
    case RuleApplied::kRuleIIncrease:
    case RuleApplied::kRuleIDecrease:
      return Rational{2};
    case RuleApplied::kLeaveJoin: {
      if (enact == kNever || enact <= due) return Rational{0};
      const Rational delta = to >= from ? to - from : from - to;
      return delta * Rational{enact - due};
    }
  }
  return Rational{0};
}

Response reject(Response out, std::string why) {
  out.decision = Decision::kRejected;
  out.reason = std::move(why);
  return out;
}

}  // namespace

Response AdmissionController::decide(
    const Request& r, const std::map<std::string, TaskId>& ids, Slot now,
    int oi_used_hint) const {
  Response out = decide_impl(r, ids, now, oi_used_hint);
  switch (out.decision) {
    case Decision::kAccepted: ++tally_.admitted; break;
    case Decision::kClamped: ++tally_.clamped; break;
    case Decision::kRejected: ++tally_.rejected; break;
    case Decision::kDeferred: ++tally_.deferred; break;
    case Decision::kShed: break;  // shedding is a service-level verdict
  }
  return out;
}

Response AdmissionController::decide_impl(
    const Request& r, const std::map<std::string, TaskId>& ids, Slot now,
    int oi_used_hint) const {
  Response out;
  out.id = r.id;
  out.kind = r.kind;
  out.slot = now;
  out.due = r.due;
  out.decision = Decision::kAccepted;

  const auto it = ids.find(r.task);
  if (r.kind == RequestKind::kJoin) {
    if (it != ids.end()) {
      return reject(std::move(out), "task name already joined");
    }
    return decide_join(r, std::move(out), now);
  }
  if (it == ids.end()) {
    return reject(std::move(out), "unknown task");
  }
  out.task = it->second;
  switch (r.kind) {
    case RequestKind::kReweight:
      return decide_reweight(r, std::move(out), now, oi_used_hint);
    case RequestKind::kLeave:
      return decide_leave(r, std::move(out), now);
    case RequestKind::kQuery:
      return decide_query(r, std::move(out), now);
    case RequestKind::kJoin:
      break;  // handled above
  }
  return out;
}

Response AdmissionController::decide_join(const Request& r, Response out,
                                          Slot now) const {
  if (r.weight <= 0) return reject(std::move(out), "weight must be positive");
  if (!engine_.config().allow_heavy && r.weight > kMaxWeight) {
    return reject(std::move(out), "heavy weight (> 1/2) not allowed");
  }
  if (engine_.admissions_frozen()) {
    out.decision = Decision::kDeferred;
    out.reason = "admissions frozen (degraded mode)";
    return out;
  }
  const Rational granted = engine_.preview_admission(-1, r.weight);
  if (granted <= 0) {
    if (engine_.config().policing == PolicingMode::kReject) {
      return reject(std::move(out), "no capacity (property W)");
    }
    // Clamp mode found zero headroom: capacity may free as leaves and
    // decreases enact, so hold the join instead of bouncing it.
    out.decision = Decision::kDeferred;
    out.reason = "no headroom; waiting for capacity";
    return out;
  }
  out.granted = granted;
  out.decision = granted == r.weight ? Decision::kAccepted : Decision::kClamped;
  if (out.decision == Decision::kClamped) out.reason = "policed to capacity";
  out.enact_slot = now;  // joins take effect at the slot they are processed
  out.drift_estimate = Rational{0};
  return out;
}

Response AdmissionController::decide_reweight(const Request& r, Response out,
                                              Slot now,
                                              int oi_used_hint) const {
  const TaskState& task = engine_.task(out.task);
  if (task.left_at != kNever || task.leave_requested_at != kNever) {
    return reject(std::move(out), "task is leaving");
  }
  if (r.weight <= 0) return reject(std::move(out), "weight must be positive");
  if (!engine_.config().allow_heavy &&
      (r.weight > kMaxWeight || task.swt > kMaxWeight)) {
    return reject(std::move(out), "heavy weight (> 1/2) not allowed");
  }
  const bool increase = r.weight > task.swt;
  if (increase && engine_.admissions_frozen()) {
    out.decision = Decision::kDeferred;
    out.reason = "admissions frozen (degraded mode)";
    return out;
  }
  Rational granted = r.weight;
  if (increase) {
    granted = engine_.preview_admission(out.task, r.weight);
    if (granted <= task.swt) {
      if (engine_.config().policing == PolicingMode::kReject) {
        return reject(std::move(out), "no capacity (property W)");
      }
      out.decision = Decision::kDeferred;
      out.reason = "no headroom; waiting for capacity";
      return out;
    }
  }
  out.granted = granted;
  out.decision = granted == r.weight ? Decision::kAccepted : Decision::kClamped;
  if (out.decision == Decision::kClamped) out.reason = "policed to capacity";
  const auto forecast = engine_.predict_enactment(out.task, granted,
                                                  oi_used_hint);
  out.rule = forecast.rule;
  out.enact_slot = forecast.at;
  out.drift_estimate =
      estimate_drift(forecast.rule, now, forecast.at, task.swt, granted);
  return out;
}

Response AdmissionController::decide_leave(const Request& r, Response out,
                                           Slot now) const {
  (void)r;
  const TaskState& task = engine_.task(out.task);
  if (task.left_at != kNever || task.leave_requested_at != kNever) {
    return reject(std::move(out), "task is already leaving");
  }
  out.granted = Rational{0};
  // Rule L: the task departs once its last released subtask's window (plus
  // the b-bit overlap) closes.
  const pfair::Subtask* last = task.last_released();
  out.enact_slot =
      last != nullptr ? std::max(now, last->deadline + last->b) : now;
  out.drift_estimate = Rational{0};
  return out;
}

Response AdmissionController::decide_query(const Request& r, Response out,
                                           Slot now) const {
  (void)r;
  const TaskState& task = engine_.task(out.task);
  out.granted = task.swt;
  out.enact_slot = now;
  out.drift_estimate = engine_.drift(out.task);
  return out;
}

}  // namespace pfr::serve
