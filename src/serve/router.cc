#include "serve/router.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "cluster/placement.h"
#include "obs/event.h"
#include "pfair/task.h"

namespace pfr::serve {

using obs::EventKind;
using obs::TraceEvent;
using pfair::RuleApplied;
using pfair::Slot;
using pfair::TaskId;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

const std::vector<double> kLatencyBounds{0, 1, 2, 4, 8, 16, 32, 64, 128};

}  // namespace

ShardedService::ShardedService(ShardedServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cluster_(cfg_.cluster),
      queue_(cfg_.queue_capacity) {
  admissions_.reserve(static_cast<std::size_t>(cluster_.shard_count()));
  for (int k = 0; k < cluster_.shard_count(); ++k) {
    admissions_.emplace_back(cluster_.shard(k),
                             AdmissionConfig{cfg_.max_defer});
  }
}

cluster::Cluster::MemberRef ShardedService::seed_task(const std::string& name,
                                                      const Rational& weight,
                                                      int rank) {
  const cluster::Cluster::AdmitResult res = cluster_.admit(name, weight, rank);
  if (res.shard < 0) {
    throw std::invalid_argument("seed_task: no shard fits task " + name +
                                " (weight " + weight.to_string() + ")");
  }
  return cluster::Cluster::MemberRef{res.shard, res.local};
}

void ShardedService::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  cluster_.set_metrics(registry);
  latency_hist_ =
      registry != nullptr
          ? &registry->histogram("serve.latency_slots", kLatencyBounds)
          : nullptr;
}

void ShardedService::set_telemetry(obs::Telemetry* telemetry) {
  cluster_.set_telemetry(telemetry);
  telemetry_ = telemetry;
  tel_prev_tally_.assign(admissions_.size(), {});
  for (std::size_t k = 0; k < admissions_.size(); ++k) {
    tel_prev_tally_[k] = admissions_[k].tally();
  }
  tel_prev_shed_ = stats_.shed;
}

void ShardedService::publish_telemetry() {
  using obs::TelCounter;
  using obs::TelGauge;
  for (std::size_t k = 0; k < admissions_.size(); ++k) {
    obs::TelemetryShard& shard = telemetry_->shard(static_cast<int>(k));
    const auto& cur = admissions_[k].tally();
    const auto& prev = tel_prev_tally_[k];
    shard.begin_slot();
    shard.add(TelCounter::kAdmitted, cur.admitted - prev.admitted);
    shard.add(TelCounter::kClamped, cur.clamped - prev.clamped);
    shard.add(TelCounter::kRejected, cur.rejected - prev.rejected);
    shard.add(TelCounter::kDeferred, cur.deferred - prev.deferred);
    if (k == 0) {
      // Queue-level state has no owning shard; by convention it lands on
      // shard 0 (and in the unlabeled totals either way).
      shard.add(TelCounter::kShed,
                static_cast<std::int64_t>(stats_.shed - tel_prev_shed_));
      shard.set(TelGauge::kQueueDepth, static_cast<double>(queue_.depth()));
    }
    shard.end_slot();
    tel_prev_tally_[k] = cur;
  }
  tel_prev_shed_ = stats_.shed;
}

void ShardedService::record_response(const Response& resp) {
  switch (resp.decision) {
    case Decision::kAccepted: ++stats_.admitted; break;
    case Decision::kClamped: ++stats_.clamped; break;
    case Decision::kRejected: ++stats_.rejected; break;
    case Decision::kDeferred: ++stats_.deferred; break;
    case Decision::kShed: ++stats_.shed; break;
  }
  if (slo_ != nullptr) {
    switch (resp.decision) {
      case Decision::kAccepted:
      case Decision::kClamped: slo_->on_admitted(); break;
      case Decision::kRejected: slo_->on_rejected(); break;
      case Decision::kShed: slo_->on_shed(); break;
      case Decision::kDeferred: break;  // not terminal
    }
  }
  responses_.push_back(resp);
}

void ShardedService::respond_shed(const Request& r, Slot t, const char* why) {
  Response resp;
  resp.id = r.id;
  resp.kind = r.kind;
  resp.decision = Decision::kShed;
  resp.slot = t;
  resp.due = r.due;
  resp.reason = why;
  record_response(resp);
  if (tracer_.enabled()) {
    TraceEvent ev;
    ev.kind = EventKind::kRequestShed;
    ev.slot = t;
    ev.when = r.deadline;
    ev.detail = why;
    if (const auto ref = cluster_.find(r.task)) {
      ev.task = ref->local;
      ev.shard = ref->shard;
    }
    tracer_.emit(ev);
  }
}

int ShardedService::pick_shard(const Rational& weight) {
  const int n = cluster_.shard_count();
  std::vector<Rational> loads;
  std::vector<int> capacities;
  loads.reserve(static_cast<std::size_t>(n));
  capacities.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    loads.push_back(cluster_.shard_load(k));
    // Effective capacity, not the configured M: a heterogeneous (or
    // lending) cluster over-admits on its slow shards if every shard is
    // weighed as if capacity were equal.
    capacities.push_back(cluster_.shard(k).alive_processors());
  }
  const int k = cluster::choose_shard(cluster_.config().placement, loads,
                                      capacities, weight);
  if (k >= 0) return k;
  // Nothing fits outright: fall back to the least-loaded shard (normalized
  // by M_k) and let its controller clamp / defer / reject per policing.
  ++stats_.placement_fallbacks;
  int best = 0;
  for (int j = 1; j < n; ++j) {
    // loads[j] / cap[j] < loads[best] / cap[best], cross-multiplied.
    if (loads[static_cast<std::size_t>(j)] *
            Rational{capacities[static_cast<std::size_t>(best)]} <
        loads[static_cast<std::size_t>(best)] *
            Rational{capacities[static_cast<std::size_t>(j)]}) {
      best = j;
    }
  }
  return best;
}

bool ShardedService::serve_one(const Request& r, Slot t,
                               std::vector<int>& oi_used) {
  Response resp;
  int shard = -1;
  if (r.kind == RequestKind::kJoin) {
    if (cluster_.find(r.task).has_value()) {
      // The per-shard controller only sees its own name table; the
      // cluster-wide duplicate check has to happen here.
      resp.id = r.id;
      resp.kind = r.kind;
      resp.slot = t;
      resp.due = r.due;
      resp.decision = Decision::kRejected;
      resp.reason = "task name already joined";
    } else {
      shard = pick_shard(r.weight);
      resp = admissions_[static_cast<std::size_t>(shard)].decide(
          r, cluster_.shard_ids(shard), t,
          oi_used[static_cast<std::size_t>(shard)]);
    }
  } else {
    const auto ref = cluster_.find(r.task);
    if (!ref.has_value()) {
      resp.id = r.id;
      resp.kind = r.kind;
      resp.slot = t;
      resp.due = r.due;
      resp.decision = Decision::kRejected;
      resp.reason = "unknown task";
    } else if (cluster_.migrating(r.task)) {
      // Mid rule-L/J handoff: the source shard has frozen the chain and the
      // target join has not landed, so neither controller can price the
      // request.  Defer until the join slot.
      ++stats_.migration_defers;
      resp.id = r.id;
      resp.kind = r.kind;
      resp.slot = t;
      resp.due = r.due;
      resp.task = ref->local;
      resp.decision = Decision::kDeferred;
      resp.reason = "task is migrating between shards";
    } else {
      shard = ref->shard;
      resp = admissions_[static_cast<std::size_t>(shard)].decide(
          r, cluster_.shard_ids(shard), t,
          oi_used[static_cast<std::size_t>(shard)]);
    }
  }

  if (resp.decision == Decision::kDeferred) {
    if (t - r.due >= cfg_.max_defer) {
      resp.decision = Decision::kRejected;
      resp.reason += "; defer window exhausted";
    } else {
      const bool already =
          std::find(deferred_notified_.begin(), deferred_notified_.end(),
                    r.id) != deferred_notified_.end();
      if (!already) {
        deferred_notified_.push_back(r.id);
        record_response(resp);
        if (tracer_.enabled()) {
          TraceEvent ev;
          ev.kind = EventKind::kRequestDelayed;
          ev.slot = t;
          ev.task = resp.task;
          ev.shard = shard;
          ev.when = t + 1;
          tracer_.emit(ev);
        }
      }
      deferred_.push_back(r);
      return false;
    }
  }

  std::erase(deferred_notified_, r.id);  // terminal from here on

  if (resp.decision == Decision::kRejected) {
    record_response(resp);
    if (tracer_.enabled()) {
      TraceEvent ev;
      ev.kind = EventKind::kRequestReject;
      ev.slot = t;
      ev.task = resp.task;
      ev.shard = shard;
      ev.weight_from = r.weight;
      ev.detail = resp.reason;
      tracer_.emit(ev);
    }
    return true;
  }

  // Accepted or clamped: apply to the owning shard through the cluster so
  // the membership tables stay authoritative.
  switch (r.kind) {
    case RequestKind::kJoin: {
      const cluster::Cluster::AdmitResult res =
          cluster_.admit(r.task, resp.granted, r.rank, shard);
      resp.task = res.local;
      break;
    }
    case RequestKind::kReweight: {
      cluster_.request_weight_change(r.task, resp.granted, t);
      if (resp.rule == RuleApplied::kRuleO ||
          resp.rule == RuleApplied::kRuleIIncrease ||
          resp.rule == RuleApplied::kRuleIDecrease) {
        ++oi_used[static_cast<std::size_t>(shard)];
      }
      unresolved_.push_back(PendingEnactment{
          responses_.size(), shard, resp.task,
          cluster_.shard(shard).task(resp.task).enactment_count});
      break;
    }
    case RequestKind::kLeave:
      cluster_.request_leave(r.task, t);
      break;
    case RequestKind::kQuery:
      break;
  }

  if (tracer_.enabled()) {
    TraceEvent ev;
    ev.kind = EventKind::kRequestAdmit;
    ev.slot = t;
    ev.task = resp.task;
    ev.shard = shard;
    ev.rule = resp.rule;
    ev.weight_from = r.weight;
    ev.weight_to = resp.granted;
    ev.when = resp.enact_slot;
    tracer_.emit(ev);
  }
  record_response(resp);
  return true;
}

void ShardedService::resolve_enactments(Slot t) {
  auto keep = unresolved_.begin();
  for (auto it = unresolved_.begin(); it != unresolved_.end(); ++it) {
    const pfair::TaskState& task = cluster_.shard(it->shard).task(it->local);
    if (task.enactment_count > it->count_at_apply) {
      Response& resp = responses_.at(it->response_index);
      resp.enact_slot = t;
      if (latency_hist_ != nullptr) {
        latency_hist_->observe(static_cast<double>(t - resp.due));
      }
      if (telemetry_ != nullptr) {
        telemetry_->shard(it->shard).observe(
            obs::TelHist::kEnactLatency, static_cast<double>(t - resp.due));
      }
      if (slo_ != nullptr) slo_->observe_latency(resp.due, t);
    } else {
      *keep++ = *it;
    }
  }
  unresolved_.erase(keep, unresolved_.end());
}

bool ShardedService::run_slot() {
  const Slot t = cluster_.now();
  if (slo_ != nullptr) slo_->advance(t);
  RequestQueue::Batch batch = queue_.drain_slot(t);
  ++stats_.batches;

  for (const Request& r : batch.shed_deadline) {
    respond_shed(r, t, "deadline passed in queue");
  }
  for (const Request& r : batch.shed_overflow) {
    respond_shed(r, t, "queue overflow");
  }

  if (tracer_.enabled()) {
    for (const Request& r : batch.admit) {
      TraceEvent ev;
      ev.kind = EventKind::kRequestEnqueue;
      ev.slot = t;
      ev.when = r.due;
      ev.folded = static_cast<int>(batch.admit.size());
      ev.detail = r.task;
      if (const auto ref = cluster_.find(r.task)) {
        ev.task = ref->local;
        ev.shard = ref->shard;
      }
      tracer_.emit(ev);
    }
  }

  // Retry-first, id-sorted merge: same ordering contract as the single-
  // engine service, so the routed path stays producer-thread deterministic.
  std::vector<Request> work = std::move(deferred_);
  deferred_.clear();
  work.insert(work.end(), std::make_move_iterator(batch.admit.begin()),
              std::make_move_iterator(batch.admit.end()));
  std::sort(work.begin(), work.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });

  std::vector<int> oi_used(static_cast<std::size_t>(cluster_.shard_count()),
                           0);
  for (const Request& r : work) {
    if (r.deadline < t) {
      respond_shed(r, t, "deadline passed while deferred");
      continue;
    }
    serve_one(r, t, oi_used);
  }

  cluster_.step();
  resolve_enactments(t);

  if (telemetry_ != nullptr) publish_telemetry();
  if (slo_ != nullptr) {
    double drift = 0;
    for (int k = 0; k < cluster_.shard_count(); ++k) {
      drift += cluster_.shard(k).mean_abs_drift();
    }
    slo_->set_drift(drift / static_cast<double>(cluster_.shard_count()));
  }

  if (metrics_ != nullptr) {
    metrics_->set_gauge("serve.queue.depth",
                        static_cast<double>(queue_.depth()));
    metrics_->counter("serve.requests.batched")
        .add(static_cast<std::int64_t>(work.size()));
  }
  return batch.open || !deferred_.empty();
}

void ShardedService::run_to_completion(Slot grace) {
  while (run_slot()) {
  }
  for (Slot g = 0; g < grace && !unresolved_.empty(); ++g) {
    const Slot t = cluster_.now();
    if (slo_ != nullptr) slo_->advance(t);
    cluster_.step();
    resolve_enactments(t);
    if (telemetry_ != nullptr) publish_telemetry();
  }
  if (metrics_ != nullptr) {
    metrics_->counter("serve.responses.admitted")
        .add(static_cast<std::int64_t>(stats_.admitted));
    metrics_->counter("serve.responses.clamped")
        .add(static_cast<std::int64_t>(stats_.clamped));
    metrics_->counter("serve.responses.rejected")
        .add(static_cast<std::int64_t>(stats_.rejected));
    metrics_->counter("serve.responses.deferred")
        .add(static_cast<std::int64_t>(stats_.deferred));
    metrics_->counter("serve.responses.shed")
        .add(static_cast<std::int64_t>(stats_.shed));
    metrics_->counter("serve.batches")
        .add(static_cast<std::int64_t>(stats_.batches));
    metrics_->counter("serve.placement.fallbacks")
        .add(static_cast<std::int64_t>(stats_.placement_fallbacks));
    metrics_->counter("serve.migration.defers")
        .add(static_cast<std::int64_t>(stats_.migration_defers));
  }
}

std::uint64_t ShardedService::response_digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const Response& r : responses_) {
    fnv_mix(h, r.id);
    fnv_mix(h, static_cast<std::uint64_t>(r.kind));
    fnv_mix(h, static_cast<std::uint64_t>(r.decision));
    fnv_mix(h, static_cast<std::uint64_t>(r.granted.num()));
    fnv_mix(h, static_cast<std::uint64_t>(r.granted.den()));
    fnv_mix(h, static_cast<std::uint64_t>(r.enact_slot));
    fnv_mix(h, static_cast<std::uint64_t>(r.slot));
  }
  return h;
}

}  // namespace pfr::serve
