/// \file request_log.h
/// \brief The request-log format: a line-oriented text grammar (scenario_io
/// style) and an equivalent length-framed binary encoding, with reader,
/// writer, and round-trip guarantees.
///
/// Text grammar (one request per line, '#' comments, blank lines ignored):
///
///   join <name> <num>/<den> at=<t> [rank=<r>] [deadline=<t>]
///   reweight <name> <num>/<den> at=<t> [deadline=<t>]
///   leave <name> at=<t> [deadline=<t>]
///   query <name> at=<t> [deadline=<t>]
///
/// Requests must appear in non-decreasing `at` order -- a request log is a
/// timeline, and replay feeds it to the slot-batched queue whose producers
/// promise monotone due slots.  RequestIds are assigned sequentially (1, 2,
/// ...) in file order, so the same log always replays to the same ids.
/// Malformed lines throw pfair::ParseError with file:line:column + token.
///
/// The binary encoding ("PFRQLOG2" magic, little-endian fixed-width fields,
/// name length-prefixed, trailing CRC-32 over everything after the magic --
/// the same shared util/crc32 the net/ wire frames seal with) carries
/// exactly the same records; it exists so a million-request load file
/// parses at I/O speed.  The reader still accepts legacy "PFRQLOG1"
/// streams (same layout, no CRC), validates every length and count before
/// allocating, and rejects corrupt weights/kinds/names with typed errors.
/// read_request_log sniffs the magic and accepts binary or text.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/request.h"

namespace pfr::serve {

/// Parses the text grammar.  Throws pfair::ParseError on malformed input or
/// on an `at` regression; `filename` labels diagnostics only.
[[nodiscard]] std::vector<Request> parse_request_log(
    std::istream& in, std::string filename = "<request-log>");
[[nodiscard]] std::vector<Request> parse_request_log_string(
    const std::string& text, std::string filename = "<request-log>");

/// Writes the text form (round-trips through parse_request_log).
void write_request_log(std::ostream& out, const std::vector<Request>& log);

/// Binary framing: magic + record count + fixed-width little-endian records
/// + CRC-32 trailer (v2).  Throws std::invalid_argument on a task name too
/// long for the length-prefixed encoding.
void write_binary_request_log(std::ostream& out,
                              const std::vector<Request>& log);
/// Throws std::runtime_error on bad magic, a truncated/overlong stream, an
/// implausible count/name length (checked BEFORE allocating), an invalid
/// weight, or (v2) a CRC mismatch.
[[nodiscard]] std::vector<Request> read_binary_request_log(std::istream& in);

/// Reads either encoding: binary when the stream starts with the magic,
/// text otherwise.
[[nodiscard]] std::vector<Request> read_request_log(
    std::istream& in, std::string filename = "<request-log>");

}  // namespace pfr::serve
