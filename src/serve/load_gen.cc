#include "serve/load_gen.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace pfr::serve {

using pfair::Slot;

GeneratedLoad generate_load(const LoadGenConfig& cfg) {
  GeneratedLoad out;
  Xoshiro256 rng = Xoshiro256::for_stream(cfg.seed, 0);

  // Initial set: light weights k/64 sized so the sum lands near 0.6 * M --
  // enough headroom that joins and increases usually admit, tight enough
  // that clamps and defers still occur.
  const double target_util = 0.6 * cfg.processors;
  const double mean_weight = cfg.tasks > 0 ? target_util / cfg.tasks : 0.0;
  const std::int64_t mean_k =
      std::clamp<std::int64_t>(static_cast<std::int64_t>(mean_weight * 64.0),
                               2, 30);
  const std::int64_t k_lo = std::max<std::int64_t>(1, mean_k - 4);
  const std::int64_t k_hi = std::min<std::int64_t>(32, mean_k + 4);
  out.tasks.reserve(static_cast<std::size_t>(cfg.tasks));
  for (int i = 0; i < cfg.tasks; ++i) {
    InitialTask task;
    task.name = "T" + std::to_string(i);
    task.weight = Rational{rng.uniform_int(k_lo, k_hi), 64};
    task.rank = i;
    out.tasks.push_back(std::move(task));
  }

  // Name pool the generator draws targets from; joins extend it, leaves
  // retire from it.  `alive` mirrors membership so leaves never drain the
  // system below half the initial population.
  std::vector<std::string> alive;
  alive.reserve(out.tasks.size());
  for (const InitialTask& task : out.tasks) alive.push_back(task.name);
  const std::size_t min_alive =
      std::max<std::size_t>(1, out.tasks.size() / 2);
  int next_join = 0;

  out.requests.reserve(cfg.requests);
  Slot due = 0;
  std::int64_t left_in_burst = 0;
  while (out.requests.size() < cfg.requests) {
    if (left_in_burst == 0) {
      ++due;
      left_in_burst = rng.uniform_int(cfg.mean_batch / 2,
                                      cfg.mean_batch + cfg.mean_batch / 2);
    }
    --left_in_burst;

    Request r;
    r.id = static_cast<RequestId>(out.requests.size()) + 1;
    r.due = due;
    r.deadline = due + cfg.deadline_slack;

    const double roll = rng.uniform01();
    // Membership churn is kept inside [tasks/2, tasks]: an unbounded
    // join/leave random walk with only a lower floor drifts upward and
    // eventually pins the set above capacity for good (every long run
    // would degenerate into rejections).  Rolls outside the band fall
    // through to reweights.
    const bool may_join =
        alive.size() < static_cast<std::size_t>(cfg.tasks);
    if (roll < cfg.p_query && !alive.empty()) {
      r.kind = RequestKind::kQuery;
      r.task = alive[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alive.size()) - 1))];
    } else if (roll < cfg.p_query + cfg.p_join && may_join) {
      r.kind = RequestKind::kJoin;
      r.task = "J" + std::to_string(next_join++);
      r.weight = Rational{rng.uniform_int(4, 8), 64};
      r.rank = cfg.tasks + next_join;
      alive.push_back(r.task);
    } else if (roll < cfg.p_query + cfg.p_join + cfg.p_leave &&
               alive.size() > min_alive) {
      r.kind = RequestKind::kLeave;
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alive.size()) - 1));
      r.task = alive[pick];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!alive.empty()) {
      r.kind = RequestKind::kReweight;
      r.task = alive[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alive.size()) - 1))];
      // Targets centered a touch above the initial mean: the set hovers
      // near capacity, so policing clamps and defers stay exercised
      // without drowning the run in rejections.
      r.weight = Rational{rng.uniform_int(4, 16), 64};
    } else {
      continue;  // nothing alive to target; next draw joins eventually
    }
    out.requests.push_back(std::move(r));
  }
  return out;
}

}  // namespace pfr::serve
