/// \file router.h
/// \brief ShardedService: the shard-aware routed admission path -- one
/// request queue in front of a cluster::Cluster of K PD2 shards.
///
/// The router is ReweightService generalized over shards.  run_slot() keeps
/// the same pipeline (drain batch -> shed -> admit -> step -> resolve
/// enactments), with routing layered in:
///
///   * joins run through the cluster's placement policy first; the chosen
///     shard's AdmissionController then prices the request against that
///     shard's headroom.  If no shard fits outright, the router falls back
///     to the least-loaded shard (normalized by M_k) and lets its
///     controller clamp / defer / reject per the shard's policing mode --
///     a placement reject is not by itself a request reject.
///   * reweight / leave / query requests route by name to the owning
///     shard's controller.  Requests targeting a task that is mid-migration
///     are deferred (the task has rule-L left its source and not yet joined
///     its target; neither shard can price the change) and retried once the
///     join lands, under the same max_defer budget as capacity waits.
///
/// Each shard gets its own AdmissionController and its own per-slot O/I
/// budget hint: rule O/I usage on shard j never burns shard k's budget.
/// Admission, application, and tracing all happen on the consumer thread in
/// request-id order, so responses and digests are bit-identical across both
/// producer-thread and cluster worker-thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace pfr::serve {

struct ShardedServiceConfig {
  cluster::ClusterConfig cluster;
  std::size_t queue_capacity{1024};
  /// Retry window for deferred requests, in slots past the due slot.
  pfair::Slot max_defer{16};
};

class ShardedService {
 public:
  explicit ShardedService(ShardedServiceConfig cfg);

  /// Places and seeds a task outside the request path (initial task set).
  /// Throws std::invalid_argument on a duplicate name or placement reject.
  cluster::Cluster::MemberRef seed_task(const std::string& name,
                                        const Rational& weight, int rank = 0);

  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] cluster::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] const cluster::Cluster& cluster() const noexcept {
    return cluster_;
  }

  /// Attaches a sink to the cluster (shard-attributed engine events) and
  /// the router's own tracer.
  void set_event_sink(obs::EventSink* sink) noexcept {
    cluster_.set_event_sink(sink);
    tracer_.set_sink(sink);
  }
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches live telemetry (nullptr detaches): shard engines publish
  /// their per-slot deltas into telemetry->shard(k) (via the cluster), the
  /// router adds per-shard admission counters from each shard's
  /// AdmissionController tally, and enactment latency lands in the owning
  /// shard's histogram.  Queue-level state (shed requests, queue depth) has
  /// no shard, so it is attributed to shard 0.  Caller keeps ownership.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Attaches one system-wide SLO tracker (nullptr detaches): advanced per
  /// slot, fed every terminal decision and resolved enactment, and given
  /// the mean |drift| across shards.  Caller keeps ownership.
  void set_slo(obs::SloTracker* slo) noexcept { slo_ = slo; }

  /// Drains and serves one slot batch, then steps the whole cluster one
  /// slot.  Returns false once the queue closes and deferrals settle.
  bool run_slot();
  void run_to_completion(pfair::Slot grace = 4096);

  [[nodiscard]] const std::vector<Response>& responses() const noexcept {
    return responses_;
  }

  /// Same digest as ReweightService::response_digest: the cross-thread
  /// determinism acceptance check for the routed path.
  [[nodiscard]] std::uint64_t response_digest() const noexcept;

  struct RouterStats {
    std::uint64_t admitted{0};
    std::uint64_t clamped{0};
    std::uint64_t rejected{0};
    std::uint64_t deferred{0};  ///< kDeferred responses issued
    std::uint64_t shed{0};
    std::uint64_t batches{0};
    /// Joins that fit no shard outright and fell back to least-loaded.
    std::uint64_t placement_fallbacks{0};
    /// Deferrals caused by an in-flight migration of the target task.
    std::uint64_t migration_defers{0};
  };
  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }

 private:
  void respond_shed(const Request& r, pfair::Slot t, const char* why);
  bool serve_one(const Request& r, pfair::Slot t, std::vector<int>& oi_used);
  void record_response(const Response& resp);
  void resolve_enactments(pfair::Slot t);
  void publish_telemetry();
  /// Placement choice for a join: the policy's pick, or the least-loaded
  /// shard (normalized) as fallback when nothing fits.
  int pick_shard(const Rational& weight);

  ShardedServiceConfig cfg_;
  cluster::Cluster cluster_;
  RequestQueue queue_;
  /// One controller per shard, each pricing against its own engine.
  std::vector<AdmissionController> admissions_;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_{nullptr};
  obs::Histogram* latency_hist_{nullptr};
  obs::Telemetry* telemetry_{nullptr};
  obs::SloTracker* slo_{nullptr};
  /// Per-shard admission tallies and the router-level shed count as of the
  /// last telemetry publish (per-slot deltas).
  std::vector<AdmissionController::DecisionTally> tel_prev_tally_;
  std::uint64_t tel_prev_shed_{0};

  std::vector<Response> responses_;
  std::vector<Request> deferred_;
  std::vector<RequestId> deferred_notified_;

  struct PendingEnactment {
    std::size_t response_index;
    int shard;
    pfair::TaskId local;
    int count_at_apply;
  };
  std::vector<PendingEnactment> unresolved_;

  RouterStats stats_;
};

}  // namespace pfr::serve
