/// \file request.h
/// \brief Typed client requests and responses for the online reweighting
/// service (src/serve).
///
/// A Request is what a client hands the service: join a task, change its
/// weight, leave, or query its state.  Requests carry *logical* timestamps:
/// `due` is the earliest slot the request may be applied, `deadline` the
/// last slot it is still worth applying (after that the service sheds it).
/// A Response is the service's typed answer: accepted / clamped / rejected /
/// deferred / shed, with the granted weight, the forecast enactment slot,
/// and a drift-cost estimate (the paper's accuracy currency, Eqn. (5)).
#pragma once

#include <cstdint>
#include <string>

#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::serve {

/// Monotone per-log request identifier; also the deterministic tie-break
/// for everything the service orders.
using RequestId = std::uint64_t;

enum class RequestKind : std::uint8_t {
  kJoin,      ///< create a task of the given weight
  kReweight,  ///< initiate a weight change on an existing task
  kLeave,     ///< rule-L departure
  kQuery,     ///< read back current weight and drift
};

[[nodiscard]] constexpr const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kJoin: return "join";
    case RequestKind::kReweight: return "reweight";
    case RequestKind::kLeave: return "leave";
    case RequestKind::kQuery: return "query";
  }
  return "?";
}

/// One client request.  `task` is a client-chosen name: joins introduce it,
/// later requests resolve it through the service's name table.
struct Request {
  RequestId id{0};
  RequestKind kind{RequestKind::kReweight};
  pfair::Slot due{0};                  ///< earliest slot to apply
  pfair::Slot deadline{pfair::kNever}; ///< shed if not applied by this slot
  std::string task;
  Rational weight;                     ///< join / reweight target
  int rank{0};                         ///< join tie-rank

  friend bool operator==(const Request&, const Request&) = default;
};

/// Admission outcome for one request (one request may produce two
/// responses: an initial kDeferred, then the final decision).
enum class Decision : std::uint8_t {
  kAccepted,  ///< applied with the requested weight
  kClamped,   ///< applied with a policed (smaller) weight
  kRejected,  ///< refused; `reason` says why
  kDeferred,  ///< parked (capacity may free); retried next slot
  kShed,      ///< dropped: deadline passed or the queue overflowed
};

[[nodiscard]] constexpr const char* to_string(Decision d) noexcept {
  switch (d) {
    case Decision::kAccepted: return "accepted";
    case Decision::kClamped: return "clamped";
    case Decision::kRejected: return "rejected";
    case Decision::kDeferred: return "deferred";
    case Decision::kShed: return "shed";
  }
  return "?";
}

/// The service's answer to one request.
struct Response {
  RequestId id{0};
  RequestKind kind{RequestKind::kReweight};
  Decision decision{Decision::kRejected};
  pfair::Slot slot{0};           ///< slot the decision was made
  pfair::Slot due{0};            ///< echoed from the request
  /// Enactment slot of the change: forecast at admission, overwritten with
  /// the exact slot once the engine enacts (kNever while unresolved).
  pfair::Slot enact_slot{pfair::kNever};
  pfair::TaskId task{-1};        ///< resolved engine id (-1 if none)
  /// Forecast reweighting rule (kNone for joins/leaves/queries); feeds the
  /// hybrid-budget intra-slot OI count and the kRequestAdmit trace.
  pfair::RuleApplied rule{pfair::RuleApplied::kNone};
  Rational granted;              ///< weight granted / current weight (query)
  /// Estimated per-event drift cost: <= 2 quanta under rules O/I (Thm. 5);
  /// under leave/join it scales with the enactment delay (Thm. 3).
  Rational drift_estimate;
  std::string reason;            ///< reject/shed/defer explanation
};

}  // namespace pfr::serve
