/// \file load_gen.h
/// \brief Deterministic request-load generator for the reweighting service.
///
/// Produces an initial light-task set (~70% utilization of M processors)
/// plus a request log of the asked-for length: mostly reweights with a
/// sprinkling of queries, joins, and leaves, bunched into per-slot bursts
/// around `mean_batch` requests.  Everything is drawn from one
/// Xoshiro256 stream keyed by (seed), so the same config always yields the
/// same GeneratedLoad -- the bench replays one load across OI/LJ/hybrid
/// policies and thread counts, and determinism tests hash it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rational/rational.h"
#include "serve/request.h"

namespace pfr::serve {

struct LoadGenConfig {
  int processors{8};
  int tasks{32};            ///< initial task-set size
  std::uint64_t requests{10000};
  std::uint64_t seed{2005};
  int mean_batch{64};       ///< mean requests per slot (bursts 0.5x..1.5x)
  pfair::Slot deadline_slack{16};  ///< request deadline = due + slack
  double p_query{0.04};
  double p_join{0.02};
  double p_leave{0.02};     ///< remainder (~0.92) are reweights
};

struct InitialTask {
  std::string name;
  Rational weight;
  int rank{0};
};

struct GeneratedLoad {
  std::vector<InitialTask> tasks;
  std::vector<Request> requests;  ///< non-decreasing due, ids 1..N
};

/// Generates the load.  Weights are k/64 light weights; reweight targets
/// stay within what policing can clamp into property (W).  Leaves are
/// suppressed while fewer than half the initial tasks remain (a reweight is
/// emitted instead) so the engine never idles out mid-log.
[[nodiscard]] GeneratedLoad generate_load(const LoadGenConfig& cfg);

}  // namespace pfr::serve
