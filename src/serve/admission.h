/// \file admission.h
/// \brief AdmissionController: typed feasibility decisions for client
/// requests against a live pfair::Engine.
///
/// The controller is the service-side half of property (W): it sizes every
/// join and reweight against the engine's alive capacity (reusing the
/// engine's own policing math via Engine::preview_admission, so the two
/// can never disagree on what fits), forecasts the enactment slot through
/// Engine::predict_enactment, and attaches a drift-cost estimate -- the
/// paper's accuracy price of the chosen rule (<= 2 quanta for O/I by
/// Theorem 5, enactment-delay-scaled for leave/join by Theorem 3).
///
/// Decisions are pure: the controller never mutates the engine.  The
/// service applies accepted decisions and owns the deferral queue.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "pfair/engine.h"
#include "serve/request.h"

namespace pfr::serve {

struct AdmissionConfig {
  /// A deferrable request (no headroom now, capacity may free) is retried
  /// once per slot for at most this many slots past its due slot.
  pfair::Slot max_defer{16};
};

class AdmissionController {
 public:
  AdmissionController(const pfair::Engine& engine, AdmissionConfig cfg)
      : engine_(engine), cfg_(cfg) {}

  /// Decides `r` at slot `now` against the current engine state.  `ids`
  /// resolves client task names; `oi_used_hint` is the number of rule-O/I
  /// initiations already admitted into this slot (hybrid-budget forecast).
  /// The returned Response is final except for Decision::kDeferred, which
  /// the service retries, and enact_slot, which the service overwrites
  /// with the exact slot once the engine enacts.
  [[nodiscard]] Response decide(const Request& r,
                                const std::map<std::string, pfair::TaskId>& ids,
                                pfair::Slot now, int oi_used_hint) const;

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Running count of decisions rendered (not terminal outcomes: a request
  /// deferred three times counts three deferrals, and a deferral the
  /// service later converts to a reject is counted as rendered).  Pure
  /// bookkeeping for the telemetry layer -- per-shard shed/admit rates
  /// without threading shard ids through the response path.
  struct DecisionTally {
    std::int64_t admitted{0};  ///< kAccepted decisions
    std::int64_t clamped{0};
    std::int64_t rejected{0};
    std::int64_t deferred{0};
  };
  [[nodiscard]] const DecisionTally& tally() const noexcept { return tally_; }

 private:
  [[nodiscard]] Response decide_impl(
      const Request& r, const std::map<std::string, pfair::TaskId>& ids,
      pfair::Slot now, int oi_used_hint) const;
  [[nodiscard]] Response decide_join(const Request& r, Response out,
                                     pfair::Slot now) const;
  [[nodiscard]] Response decide_reweight(const Request& r, Response out,
                                         pfair::Slot now,
                                         int oi_used_hint) const;
  [[nodiscard]] Response decide_leave(const Request& r, Response out,
                                      pfair::Slot now) const;
  [[nodiscard]] Response decide_query(const Request& r, Response out,
                                      pfair::Slot now) const;

  const pfair::Engine& engine_;
  AdmissionConfig cfg_;
  /// Observability only: never consulted by a decision (decide() stays
  /// pure with respect to the engine and its own verdicts).
  mutable DecisionTally tally_;
};

}  // namespace pfr::serve
