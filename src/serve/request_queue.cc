#include "serve/request_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pfr::serve {

using pfair::kNever;
using pfair::Slot;

namespace {

/// Deterministic batch order: by (due, id).  Ids are unique, so this is a
/// total order and plain sort suffices.
void sort_batch(std::vector<Request>& v) {
  std::sort(v.begin(), v.end(), [](const Request& a, const Request& b) {
    return a.due != b.due ? a.due < b.due : a.id < b.id;
  });
}

}  // namespace

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  items_.reserve(capacity_);
}

int RequestQueue::add_producer() {
  const std::lock_guard lock{mu_};
  watermark_.push_back(-1);
  done_.push_back(false);
  return static_cast<int>(watermark_.size()) - 1;
}

void RequestQueue::producer_done(int producer) {
  {
    const std::lock_guard lock{mu_};
    done_.at(static_cast<std::size_t>(producer)) = true;
  }
  cv_data_.notify_all();
}

void RequestQueue::note_watermark_locked(int producer, Slot due) {
  Slot& mark = watermark_.at(static_cast<std::size_t>(producer));
  if (due < mark) {
    throw std::invalid_argument(
        "RequestQueue: producer due slots must be non-decreasing");
  }
  mark = due;
}

Slot RequestQueue::min_watermark_locked() const {
  Slot mark = kNever;
  for (std::size_t p = 0; p < watermark_.size(); ++p) {
    if (!done_[p]) mark = std::min(mark, watermark_[p]);
  }
  return mark;
}

bool RequestQueue::push(int producer, Request r) {
  {
    std::unique_lock lock{mu_};
    note_watermark_locked(producer, r.due);
    // The watermark advance alone can complete an in-progress drain (the
    // consumer may be waiting for this producer to move past the drain
    // slot), so signal it before possibly blocking for space.
    cv_data_.notify_all();
    cv_space_.wait(lock, [&] {
      return closed_ || items_.size() < capacity_ || r.due <= draining_;
    });
    if (closed_) return false;
    ++total_offered_;
    items_.push_back(std::move(r));
    high_watermark_ = std::max(high_watermark_, items_.size());
    ++total_pushed_;
  }
  cv_data_.notify_all();
  return true;
}

RequestQueue::PushResult RequestQueue::try_push(int producer, Request r) {
  PushResult out;
  {
    const std::lock_guard lock{mu_};
    note_watermark_locked(producer, r.due);
    if (closed_) return out;
    ++total_offered_;
    if (items_.size() >= capacity_) {
      // Shed by deadline: the least urgent of queued + incoming loses.
      auto victim = std::max_element(
          items_.begin(), items_.end(),
          [](const Request& a, const Request& b) {
            return a.deadline != b.deadline ? a.deadline < b.deadline
                                            : a.id < b.id;
          });
      const bool incoming_loses =
          r.deadline > victim->deadline ||
          (r.deadline == victim->deadline && r.id > victim->id);
      ++total_overflow_shed_;
      if (incoming_loses) {
        overflow_shed_.push_back(std::move(r));
      } else {
        // The incoming request inherits the evicted victim's queue slot --
        // and its spot in total_pushed_.  Counting another push here would
        // double-book the offer (as both a push and a shed) and break
        // offered == pushed + shed.
        out.shed_other = true;
        overflow_shed_.push_back(std::move(*victim));
        *victim = std::move(r);
        out.enqueued = true;
      }
    } else {
      items_.push_back(std::move(r));
      high_watermark_ = std::max(high_watermark_, items_.size());
      out.enqueued = true;
      ++total_pushed_;
    }
  }
  cv_data_.notify_all();
  return out;
}

bool RequestQueue::offer(int producer, Request r, std::size_t soft_capacity) {
  const std::size_t bound = std::min(soft_capacity, capacity_);
  bool accepted = true;
  {
    const std::lock_guard lock{mu_};
    note_watermark_locked(producer, r.due);
    if (!closed_) {
      if (items_.size() >= bound && r.due > draining_) {
        // Refused: the caller keeps r and re-offers it later (the equal-due
        // watermark note then passes the non-decreasing check).  The offer
        // is not counted until it is accepted, keeping
        // offered == pushed + shed intact.
        accepted = false;
      } else {
        ++total_offered_;
        items_.push_back(std::move(r));
        high_watermark_ = std::max(high_watermark_, items_.size());
        ++total_pushed_;
      }
    }
  }
  // Even a refusal advanced the watermark, and that alone can complete an
  // in-progress drain.
  cv_data_.notify_all();
  return accepted;
}

std::size_t RequestQueue::offer_batch(int producer, const Request* items,
                                      std::size_t n,
                                      std::size_t soft_capacity) {
  const std::size_t bound = std::min(soft_capacity, capacity_);
  std::size_t accepted = 0;
  {
    const std::lock_guard lock{mu_};
    while (accepted < n) {
      const Request& r = items[accepted];
      note_watermark_locked(producer, r.due);
      if (closed_) {
        // offer() accepts-and-drops on a closed queue so callers never
        // retry forever; the batched form drops the whole remainder.
        accepted = n;
        break;
      }
      if (items_.size() >= bound && r.due > draining_) break;
      ++total_offered_;
      items_.push_back(r);
      high_watermark_ = std::max(high_watermark_, items_.size());
      ++total_pushed_;
      ++accepted;
    }
  }
  // One wakeup for the whole prefix; even an all-refused batch advanced
  // the watermark, and that alone can complete an in-progress drain.
  cv_data_.notify_all();
  return accepted;
}

void RequestQueue::advance_watermark(int producer, Slot due) {
  {
    const std::lock_guard lock{mu_};
    note_watermark_locked(producer, due);
  }
  // The advance may be exactly what an in-progress drain is waiting for.
  cv_data_.notify_all();
}

RequestQueue::Batch RequestQueue::drain_slot(Slot t) {
  Batch batch;
  std::unique_lock lock{mu_};
  draining_ = t;
  cv_space_.notify_all();  // due-<=-t pushes may now bypass the bound
  for (;;) {
    // Move everything already due out of the ring so blocked producers make
    // progress while we wait for the stragglers' watermarks.
    auto due_now = std::stable_partition(
        items_.begin(), items_.end(),
        [t](const Request& r) { return r.due > t; });
    if (due_now != items_.end()) {
      for (auto it = due_now; it != items_.end(); ++it) {
        (it->deadline >= t ? batch.admit : batch.shed_deadline)
            .push_back(std::move(*it));
      }
      items_.erase(due_now, items_.end());
      cv_space_.notify_all();
    }
    if (closed_ || min_watermark_locked() > t) break;
    cv_data_.wait(lock);
  }
  batch.shed_overflow.swap(overflow_shed_);
  batch.open = !closed_ && (min_watermark_locked() != kNever ||
                            !items_.empty());
  draining_ = -1;
  lock.unlock();
  sort_batch(batch.admit);
  sort_batch(batch.shed_deadline);
  sort_batch(batch.shed_overflow);
  return batch;
}

void RequestQueue::close() {
  {
    const std::lock_guard lock{mu_};
    closed_ = true;
  }
  cv_data_.notify_all();
  cv_space_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard lock{mu_};
  return items_.size();
}

std::size_t RequestQueue::high_watermark() const {
  const std::lock_guard lock{mu_};
  return high_watermark_;
}

std::uint64_t RequestQueue::total_offered() const {
  const std::lock_guard lock{mu_};
  return total_offered_;
}

std::uint64_t RequestQueue::total_pushed() const {
  const std::lock_guard lock{mu_};
  return total_pushed_;
}

std::uint64_t RequestQueue::total_overflow_shed() const {
  const std::lock_guard lock{mu_};
  return total_overflow_shed_;
}

}  // namespace pfr::serve
