/// \file request_queue.h
/// \brief Slot-batched bounded MPSC request queue with backpressure,
/// watermark-gated determinism, and deadline-aware shedding.
///
/// Many producer threads push Requests; one consumer (the service loop)
/// drains exactly one batch per engine slot.  The central guarantee is
/// *thread-count independence*: the batch for slot t is "every request with
/// due <= t", regardless of how pushes interleave in wall time.  That works
/// because each producer promises non-decreasing `due` values (a request
/// stream is a timeline) and the queue tracks a per-producer watermark;
/// drain_slot(t) completes only once every registered producer has moved
/// past t or finished.  Replaying one log through 1 or N producers
/// therefore yields bit-identical batches (tests assert this).
///
/// Backpressure: `push` blocks while the queue is at capacity -- except for
/// requests already due at the slot currently being drained, which bypass
/// the bound so the in-progress batch can always complete (bounded by one
/// request per producer; this is what makes the watermark wait deadlock-
/// free).  `try_push` never blocks: at capacity it sheds by deadline --
/// the least urgent request (latest deadline, then highest id) of the
/// queued-plus-incoming set loses its place and is reported through the
/// next drained batch so the consumer can respond and trace the shed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace pfr::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Registers a producer and returns its handle.  Register every producer
  /// before the consumer starts draining (a late registration could miss
  /// the watermark wait for batches already finalized).
  [[nodiscard]] int add_producer();

  /// Marks a producer finished; its watermark no longer gates drains.
  void producer_done(int producer);

  /// Blocking push with backpressure.  `r.due` must be >= the producer's
  /// previous due (throws std::invalid_argument otherwise -- the monotone
  /// promise is what the determinism guarantee rests on).  Returns false
  /// if the queue was closed.
  bool push(int producer, Request r);

  struct PushResult {
    bool enqueued{false};       ///< r itself got a slot in the queue
    bool shed_other{false};     ///< an older queued request was evicted
  };
  /// Non-blocking push; sheds by deadline at capacity (see file comment).
  /// Shed requests surface in Batch::shed_overflow of a later drain.
  PushResult try_push(int producer, Request r);

  /// Non-blocking, non-shedding push for a caller that can park the
  /// request itself (net/ingest: the frame stays in its shm ring or a
  /// per-connection buffer).  Enqueues when there is space or the
  /// due-<=-draining bypass applies, returning true; at capacity it
  /// returns false and the caller retries the SAME request later.  Either
  /// way the producer's watermark advances to r.due first -- a refused
  /// request's due is still a valid promise that nothing earlier follows,
  /// so an in-progress drain keeps making progress while the request
  /// waits.  Returns true (dropping r) once the queue is closed, so the
  /// caller never retries forever.
  ///
  /// `soft_capacity` (clamped to the real capacity) lets the caller refuse
  /// earlier than the hard bound -- net/ingest throttles admission at its
  /// high watermark this way.  The due-<=-draining bypass ignores the soft
  /// bound too: the in-progress batch must always be completable.
  bool offer(int producer, Request r,
             std::size_t soft_capacity = static_cast<std::size_t>(-1));

  /// Batched offer(): admits the longest acceptable prefix of `items`
  /// (non-decreasing due, same single producer) under ONE lock acquisition
  /// and ONE consumer wakeup, and returns its length.  Equivalent to
  /// calling offer() per item and stopping at the first refusal -- the
  /// watermark still advances through the first refused item's due (a
  /// refusal is a valid promise that nothing earlier follows), and a closed
  /// queue accepts-and-drops the whole remainder.  This is what keeps N
  /// forked ring producers from serializing on the queue mutex one frame
  /// at a time.
  std::size_t offer_batch(int producer, const Request* items, std::size_t n,
                          std::size_t soft_capacity
                          = static_cast<std::size_t>(-1));

  /// Advances a producer's watermark without pushing anything: the
  /// producer promises that nothing with due < `due` will follow.  Remote
  /// producers (net/ingest) announce progress this way while idle, so a
  /// quiet connection never stalls drain_slot's watermark wait.  Throws
  /// std::invalid_argument on a regression, like push.
  void advance_watermark(int producer, pfair::Slot due);

  struct Batch {
    std::vector<Request> admit;          ///< due <= t, deadline >= t; by id
    std::vector<Request> shed_deadline;  ///< due <= t but deadline < t; by id
    std::vector<Request> shed_overflow;  ///< evicted by try_push; by id
    bool open{true};  ///< false once all producers finished and queue drained
  };
  /// Consumer side: blocks until every producer's watermark has passed `t`
  /// (or the producer finished), then returns the complete slot-t batch.
  Batch drain_slot(pfair::Slot t);

  /// Unblocks everything; subsequent pushes return false / shed nothing.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t high_watermark() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Accepted offers (push/try_push calls that were not refused by close).
  /// Conservation law, checkable at any quiescent point:
  ///   total_offered() == total_pushed() + total_overflow_shed().
  /// Every accepted offer is accounted exactly once: it holds a queue slot
  /// (pushed) or it was shed.  When try_push evicts a queued victim, the
  /// incoming request inherits the victim's slot -- and its push count --
  /// while the victim moves to the shed side.
  [[nodiscard]] std::uint64_t total_offered() const;
  [[nodiscard]] std::uint64_t total_pushed() const;
  [[nodiscard]] std::uint64_t total_overflow_shed() const;

 private:
  /// Smallest due any still-active producer might still push; kNever once
  /// all producers are done.
  [[nodiscard]] pfair::Slot min_watermark_locked() const;
  void note_watermark_locked(int producer, pfair::Slot due);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_data_;   ///< producers -> consumer
  std::condition_variable cv_space_;  ///< consumer -> blocked producers
  std::vector<Request> items_;
  std::vector<Request> overflow_shed_;
  std::vector<pfair::Slot> watermark_;  ///< last due offered, per producer
  std::vector<bool> done_;
  pfair::Slot draining_{-1};  ///< slot currently being drained, for bypass
  bool closed_{false};
  std::size_t high_watermark_{0};
  std::uint64_t total_offered_{0};
  std::uint64_t total_pushed_{0};
  std::uint64_t total_overflow_shed_{0};
};

}  // namespace pfr::serve
