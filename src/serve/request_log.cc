#include "serve/request_log.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pfair/scenario_io.h"
#include "pfair/weight.h"
#include "util/crc32.h"

namespace pfr::serve {
namespace {

using pfair::ParseError;
using pfair::Slot;

constexpr char kMagicV1[8] = {'P', 'F', 'R', 'Q', 'L', 'O', 'G', '1'};
constexpr char kMagicV2[8] = {'P', 'F', 'R', 'Q', 'L', 'O', 'G', '2'};

/// Task names have no inherent bound in the text grammar, but an
/// attacker-controlled binary stream must not make the reader allocate on
/// faith.  This is far beyond any legitimate task name.
constexpr std::size_t kMaxTaskNameBytes = 4096;
/// Vector growth is pre-reserved at most this far on the untrusted record
/// count; larger (legitimate) logs just grow normally while the stream
/// keeps proving it has records.
constexpr std::size_t kMaxReserveRecords = 1 << 16;

// ----- text reader (same tokenizer discipline as scenario_io) -----

struct Token {
  std::string text;
  int column{0};
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    const auto c = static_cast<unsigned char>(line[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != '#' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(
        Token{line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return out;
}

class Parser {
 public:
  Parser(std::istream& in, std::string filename)
      : in_(in), filename_(std::move(filename)) {}

  std::vector<Request> run() {
    std::string text;
    while (std::getline(in_, text)) {
      ++line_;
      tok_ = tokenize(text);
      if (tok_.empty()) continue;
      parse_request();
    }
    return std::move(log_);
  }

 private:
  [[noreturn]] void fail(const Token& where, const std::string& message) {
    throw ParseError(filename_, line_, where.column, where.text, message);
  }

  void expect_tokens(std::size_t min, std::size_t max,
                     const std::string& usage) {
    if (tok_.size() < min || tok_.size() > max) {
      fail(tok_[0], "expected: " + usage);
    }
  }

  std::int64_t parse_int(const Token& tok) {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
    if (ec != std::errc{} || ptr != tok.text.data() + tok.text.size()) {
      fail(tok, "expected integer, got '" + tok.text + "'");
    }
    return v;
  }

  Rational parse_rational(const Token& tok) {
    const auto slash = tok.text.find('/');
    if (slash == std::string::npos) return Rational{parse_int(tok)};
    const Token num{tok.text.substr(0, slash), tok.column};
    const Token den{tok.text.substr(slash + 1),
                    tok.column + static_cast<int>(slash) + 1};
    const std::int64_t d = parse_int(den);
    if (d == 0) fail(tok, "zero denominator in '" + tok.text + "'");
    return Rational{parse_int(num), d};
  }

  std::int64_t parse_kv(const Token& tok, const std::string& key) {
    const std::string prefix = key + "=";
    if (tok.text.rfind(prefix, 0) != 0) {
      fail(tok, "expected " + prefix + "<value>, got '" + tok.text + "'");
    }
    const Token value{tok.text.substr(prefix.size()),
                      tok.column + static_cast<int>(prefix.size())};
    return parse_int(value);
  }

  Rational parse_weight(const Token& tok) {
    const Rational w = parse_rational(tok);
    if (!pfair::is_valid_weight(w)) {
      fail(tok, "weight must satisfy 0 < w <= 1/2");
    }
    return w;
  }

  /// Reads the trailing [rank=] / [deadline=] attributes and the required
  /// at=, in any order after the fixed positional fields.
  void parse_attrs(std::size_t first, bool allow_rank, Request& r) {
    bool have_at = false;
    for (std::size_t k = first; k < tok_.size(); ++k) {
      const std::string& t = tok_[k].text;
      if (t.rfind("at=", 0) == 0) {
        r.due = parse_kv(tok_[k], "at");
        if (r.due < 0) fail(tok_[k], "request time must be >= 0");
        have_at = true;
      } else if (t.rfind("deadline=", 0) == 0) {
        r.deadline = parse_kv(tok_[k], "deadline");
        if (r.deadline < 0) fail(tok_[k], "deadline must be >= 0");
      } else if (allow_rank && t.rfind("rank=", 0) == 0) {
        r.rank = static_cast<int>(parse_kv(tok_[k], "rank"));
      } else {
        fail(tok_[k], "unknown request attribute '" + t + "'");
      }
    }
    if (!have_at) fail(tok_[0], "missing at=<t>");
    if (r.deadline < r.due) {
      fail(tok_[0], "deadline earlier than the request's at= slot");
    }
  }

  void push(Request r, const Token& head) {
    if (r.due < last_due_) {
      fail(head,
           "requests must be in non-decreasing at= order (a request log is "
           "a timeline)");
    }
    last_due_ = r.due;
    r.id = static_cast<RequestId>(log_.size()) + 1;
    log_.push_back(std::move(r));
  }

  void parse_request() {
    const std::string& head = tok_[0].text;
    Request r;
    if (head == "join") {
      expect_tokens(4, 6,
                    "join <name> <num>/<den> at=<t> [rank=<r>] [deadline=<t>]");
      r.kind = RequestKind::kJoin;
      r.task = tok_[1].text;
      r.weight = parse_weight(tok_[2]);
      parse_attrs(3, /*allow_rank=*/true, r);
    } else if (head == "reweight") {
      expect_tokens(4, 5, "reweight <name> <num>/<den> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kReweight;
      r.task = tok_[1].text;
      r.weight = parse_weight(tok_[2]);
      parse_attrs(3, /*allow_rank=*/false, r);
    } else if (head == "leave") {
      expect_tokens(3, 4, "leave <name> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kLeave;
      r.task = tok_[1].text;
      parse_attrs(2, /*allow_rank=*/false, r);
    } else if (head == "query") {
      expect_tokens(3, 4, "query <name> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kQuery;
      r.task = tok_[1].text;
      parse_attrs(2, /*allow_rank=*/false, r);
    } else {
      fail(tok_[0], "unknown request '" + head + "'");
    }
    push(std::move(r), tok_[0]);
  }

  std::istream& in_;
  std::string filename_;
  std::vector<Request> log_;
  std::vector<Token> tok_;
  int line_{0};
  Slot last_due_{0};
};

// ----- binary framing -----
//
// Both directions run every byte after the magic through the shared
// CRC-32 (util/crc32, the same polynomial the net/ wire frames use); v2
// streams carry the digest as a trailing little-endian u32.

struct CrcWriter {
  std::ostream& out;
  std::uint32_t crc{crc32_init()};

  void write(const char* data, std::size_t size) {
    crc = crc32_update(crc, data, size);
    out.write(data, static_cast<std::streamsize>(size));
  }
  void put_u64(std::uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    write(buf, 8);
  }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
};

struct CrcReader {
  std::istream& in;
  std::uint32_t crc{crc32_init()};

  void read(char* data, std::size_t size) {
    if (!in.read(data, static_cast<std::streamsize>(size))) {
      throw std::runtime_error("request log: truncated");
    }
    crc = crc32_update(crc, data, size);
  }
  std::uint64_t get_u64() {
    char buf[8];
    read(buf, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
           << (8 * i);
    }
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
};

}  // namespace

std::vector<Request> parse_request_log(std::istream& in,
                                       std::string filename) {
  return Parser{in, std::move(filename)}.run();
}

std::vector<Request> parse_request_log_string(const std::string& text,
                                              std::string filename) {
  std::istringstream in{text};
  return parse_request_log(in, std::move(filename));
}

void write_request_log(std::ostream& out, const std::vector<Request>& log) {
  for (const Request& r : log) {
    out << to_string(r.kind) << ' ' << r.task;
    if (r.kind == RequestKind::kJoin || r.kind == RequestKind::kReweight) {
      out << ' ' << r.weight.to_string();
    }
    out << " at=" << r.due;
    if (r.kind == RequestKind::kJoin && r.rank != 0) out << " rank=" << r.rank;
    if (r.deadline != pfair::kNever) out << " deadline=" << r.deadline;
    out << '\n';
  }
}

void write_binary_request_log(std::ostream& out,
                              const std::vector<Request>& log) {
  out.write(kMagicV2, sizeof kMagicV2);
  CrcWriter w{out};
  w.put_u64(log.size());
  for (const Request& r : log) {
    if (r.task.size() > kMaxTaskNameBytes) {
      throw std::invalid_argument("request log: task name too long for the "
                                  "binary encoding");
    }
    w.put_u64((static_cast<std::uint64_t>(r.kind) & 0xFF) |
              (static_cast<std::uint64_t>(r.task.size()) << 8) |
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.rank))
               << 32));
    w.put_u64(r.id);
    w.put_i64(r.due);
    w.put_i64(r.deadline);
    w.put_i64(r.weight.num());
    w.put_i64(r.weight.den());
    w.write(r.task.data(), r.task.size());
  }
  const std::uint32_t crc = crc32_final(w.crc);
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  out.write(buf, 4);
}

std::vector<Request> read_binary_request_log(std::istream& in) {
  char magic[sizeof kMagicV1];
  if (!in.read(magic, sizeof magic)) {
    throw std::runtime_error("request log: bad magic");
  }
  const bool v2 = std::memcmp(magic, kMagicV2, sizeof kMagicV2) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, sizeof kMagicV1) != 0) {
    throw std::runtime_error("request log: bad magic");
  }
  CrcReader rd{in};
  const std::uint64_t count = rd.get_u64();
  std::vector<Request> log;
  // An untrusted count must not drive the allocator: reserve only what a
  // small stream could plausibly contain; real records grow the vector as
  // they are proven to exist.
  log.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, kMaxReserveRecords)));
  for (std::uint64_t i = 0; i < count; ++i) {
    Request r;
    const std::uint64_t packed = rd.get_u64();
    const auto kind = static_cast<std::uint8_t>(packed & 0xFF);
    if (kind > static_cast<std::uint8_t>(RequestKind::kQuery)) {
      throw std::runtime_error("request log: unknown request kind");
    }
    r.kind = static_cast<RequestKind>(kind);
    const auto name_len = static_cast<std::size_t>((packed >> 8) & 0xFFFFFF);
    if (name_len > kMaxTaskNameBytes) {
      throw std::runtime_error("request log: oversized task name");
    }
    r.rank = static_cast<int>(static_cast<std::int32_t>(
        static_cast<std::uint32_t>(packed >> 32)));
    r.id = rd.get_u64();
    r.due = rd.get_i64();
    r.deadline = rd.get_i64();
    const std::int64_t num = rd.get_i64();
    const std::int64_t den = rd.get_i64();
    // The INT64_MIN guards keep Rational's normalization (which negates)
    // away from signed overflow on hostile input, mirroring net/wire.
    if (den == 0 || den == std::numeric_limits<std::int64_t>::min() ||
        num == std::numeric_limits<std::int64_t>::min()) {
      throw std::runtime_error("request log: invalid weight");
    }
    r.weight = Rational{num, den};
    r.task.resize(name_len);
    if (name_len > 0) rd.read(r.task.data(), name_len);
    log.push_back(std::move(r));
  }
  if (v2) {
    const std::uint32_t want = crc32_final(rd.crc);
    char buf[4];
    if (!in.read(buf, 4)) {
      throw std::runtime_error("request log: truncated");
    }
    std::uint32_t got = 0;
    for (int i = 0; i < 4; ++i) {
      got |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    if (got != want) {
      throw std::runtime_error("request log: CRC mismatch");
    }
  }
  return log;
}

std::vector<Request> read_request_log(std::istream& in,
                                      std::string filename) {
  // Sniff the magic without consuming text input.
  char magic[sizeof kMagicV1];
  in.read(magic, sizeof magic);
  const auto got = in.gcount();
  if (got == static_cast<std::streamsize>(sizeof magic) &&
      (std::memcmp(magic, kMagicV1, sizeof kMagicV1) == 0 ||
       std::memcmp(magic, kMagicV2, sizeof kMagicV2) == 0)) {
    in.clear();
    in.seekg(0);
    return read_binary_request_log(in);
  }
  in.clear();
  in.seekg(0);
  return parse_request_log(in, std::move(filename));
}

}  // namespace pfr::serve
