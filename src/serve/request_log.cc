#include "serve/request_log.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pfair/scenario_io.h"
#include "pfair/weight.h"

namespace pfr::serve {
namespace {

using pfair::ParseError;
using pfair::Slot;

constexpr char kMagic[8] = {'P', 'F', 'R', 'Q', 'L', 'O', 'G', '1'};

// ----- text reader (same tokenizer discipline as scenario_io) -----

struct Token {
  std::string text;
  int column{0};
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    const auto c = static_cast<unsigned char>(line[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != '#' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(
        Token{line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return out;
}

class Parser {
 public:
  Parser(std::istream& in, std::string filename)
      : in_(in), filename_(std::move(filename)) {}

  std::vector<Request> run() {
    std::string text;
    while (std::getline(in_, text)) {
      ++line_;
      tok_ = tokenize(text);
      if (tok_.empty()) continue;
      parse_request();
    }
    return std::move(log_);
  }

 private:
  [[noreturn]] void fail(const Token& where, const std::string& message) {
    throw ParseError(filename_, line_, where.column, where.text, message);
  }

  void expect_tokens(std::size_t min, std::size_t max,
                     const std::string& usage) {
    if (tok_.size() < min || tok_.size() > max) {
      fail(tok_[0], "expected: " + usage);
    }
  }

  std::int64_t parse_int(const Token& tok) {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.text.data(), tok.text.data() + tok.text.size(), v);
    if (ec != std::errc{} || ptr != tok.text.data() + tok.text.size()) {
      fail(tok, "expected integer, got '" + tok.text + "'");
    }
    return v;
  }

  Rational parse_rational(const Token& tok) {
    const auto slash = tok.text.find('/');
    if (slash == std::string::npos) return Rational{parse_int(tok)};
    const Token num{tok.text.substr(0, slash), tok.column};
    const Token den{tok.text.substr(slash + 1),
                    tok.column + static_cast<int>(slash) + 1};
    const std::int64_t d = parse_int(den);
    if (d == 0) fail(tok, "zero denominator in '" + tok.text + "'");
    return Rational{parse_int(num), d};
  }

  std::int64_t parse_kv(const Token& tok, const std::string& key) {
    const std::string prefix = key + "=";
    if (tok.text.rfind(prefix, 0) != 0) {
      fail(tok, "expected " + prefix + "<value>, got '" + tok.text + "'");
    }
    const Token value{tok.text.substr(prefix.size()),
                      tok.column + static_cast<int>(prefix.size())};
    return parse_int(value);
  }

  Rational parse_weight(const Token& tok) {
    const Rational w = parse_rational(tok);
    if (!pfair::is_valid_weight(w)) {
      fail(tok, "weight must satisfy 0 < w <= 1/2");
    }
    return w;
  }

  /// Reads the trailing [rank=] / [deadline=] attributes and the required
  /// at=, in any order after the fixed positional fields.
  void parse_attrs(std::size_t first, bool allow_rank, Request& r) {
    bool have_at = false;
    for (std::size_t k = first; k < tok_.size(); ++k) {
      const std::string& t = tok_[k].text;
      if (t.rfind("at=", 0) == 0) {
        r.due = parse_kv(tok_[k], "at");
        if (r.due < 0) fail(tok_[k], "request time must be >= 0");
        have_at = true;
      } else if (t.rfind("deadline=", 0) == 0) {
        r.deadline = parse_kv(tok_[k], "deadline");
        if (r.deadline < 0) fail(tok_[k], "deadline must be >= 0");
      } else if (allow_rank && t.rfind("rank=", 0) == 0) {
        r.rank = static_cast<int>(parse_kv(tok_[k], "rank"));
      } else {
        fail(tok_[k], "unknown request attribute '" + t + "'");
      }
    }
    if (!have_at) fail(tok_[0], "missing at=<t>");
    if (r.deadline < r.due) {
      fail(tok_[0], "deadline earlier than the request's at= slot");
    }
  }

  void push(Request r, const Token& head) {
    if (r.due < last_due_) {
      fail(head,
           "requests must be in non-decreasing at= order (a request log is "
           "a timeline)");
    }
    last_due_ = r.due;
    r.id = static_cast<RequestId>(log_.size()) + 1;
    log_.push_back(std::move(r));
  }

  void parse_request() {
    const std::string& head = tok_[0].text;
    Request r;
    if (head == "join") {
      expect_tokens(4, 6,
                    "join <name> <num>/<den> at=<t> [rank=<r>] [deadline=<t>]");
      r.kind = RequestKind::kJoin;
      r.task = tok_[1].text;
      r.weight = parse_weight(tok_[2]);
      parse_attrs(3, /*allow_rank=*/true, r);
    } else if (head == "reweight") {
      expect_tokens(4, 5, "reweight <name> <num>/<den> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kReweight;
      r.task = tok_[1].text;
      r.weight = parse_weight(tok_[2]);
      parse_attrs(3, /*allow_rank=*/false, r);
    } else if (head == "leave") {
      expect_tokens(3, 4, "leave <name> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kLeave;
      r.task = tok_[1].text;
      parse_attrs(2, /*allow_rank=*/false, r);
    } else if (head == "query") {
      expect_tokens(3, 4, "query <name> at=<t> [deadline=<t>]");
      r.kind = RequestKind::kQuery;
      r.task = tok_[1].text;
      parse_attrs(2, /*allow_rank=*/false, r);
    } else {
      fail(tok_[0], "unknown request '" + head + "'");
    }
    push(std::move(r), tok_[0]);
  }

  std::istream& in_;
  std::string filename_;
  std::vector<Request> log_;
  std::vector<Token> tok_;
  int line_{0};
  Slot last_due_{0};
};

// ----- binary framing -----

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(buf, 8);
}

void put_i64(std::ostream& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint64_t get_u64(std::istream& in) {
  char buf[8];
  if (!in.read(buf, 8)) throw std::runtime_error("request log: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

std::int64_t get_i64(std::istream& in) {
  return static_cast<std::int64_t>(get_u64(in));
}

}  // namespace

std::vector<Request> parse_request_log(std::istream& in,
                                       std::string filename) {
  return Parser{in, std::move(filename)}.run();
}

std::vector<Request> parse_request_log_string(const std::string& text,
                                              std::string filename) {
  std::istringstream in{text};
  return parse_request_log(in, std::move(filename));
}

void write_request_log(std::ostream& out, const std::vector<Request>& log) {
  for (const Request& r : log) {
    out << to_string(r.kind) << ' ' << r.task;
    if (r.kind == RequestKind::kJoin || r.kind == RequestKind::kReweight) {
      out << ' ' << r.weight.to_string();
    }
    out << " at=" << r.due;
    if (r.kind == RequestKind::kJoin && r.rank != 0) out << " rank=" << r.rank;
    if (r.deadline != pfair::kNever) out << " deadline=" << r.deadline;
    out << '\n';
  }
}

void write_binary_request_log(std::ostream& out,
                              const std::vector<Request>& log) {
  out.write(kMagic, sizeof kMagic);
  put_u64(out, log.size());
  for (const Request& r : log) {
    put_u64(out, (static_cast<std::uint64_t>(r.kind) & 0xFF) |
                     (static_cast<std::uint64_t>(r.task.size()) << 8) |
                     (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          r.rank))
                      << 32));
    put_u64(out, r.id);
    put_i64(out, r.due);
    put_i64(out, r.deadline);
    put_i64(out, r.weight.num());
    put_i64(out, r.weight.den());
    out.write(r.task.data(), static_cast<std::streamsize>(r.task.size()));
  }
}

std::vector<Request> read_binary_request_log(std::istream& in) {
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("request log: bad magic");
  }
  const std::uint64_t count = get_u64(in);
  std::vector<Request> log;
  log.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Request r;
    const std::uint64_t packed = get_u64(in);
    const auto kind = static_cast<std::uint8_t>(packed & 0xFF);
    if (kind > static_cast<std::uint8_t>(RequestKind::kQuery)) {
      throw std::runtime_error("request log: unknown request kind");
    }
    r.kind = static_cast<RequestKind>(kind);
    const auto name_len = static_cast<std::size_t>((packed >> 8) & 0xFFFFFF);
    r.rank = static_cast<int>(static_cast<std::int32_t>(
        static_cast<std::uint32_t>(packed >> 32)));
    r.id = get_u64(in);
    r.due = get_i64(in);
    r.deadline = get_i64(in);
    const std::int64_t num = get_i64(in);
    const std::int64_t den = get_i64(in);
    if (den == 0) throw std::runtime_error("request log: zero denominator");
    r.weight = Rational{num, den};
    r.task.resize(name_len);
    if (name_len > 0 &&
        !in.read(r.task.data(), static_cast<std::streamsize>(name_len))) {
      throw std::runtime_error("request log: truncated");
    }
    log.push_back(std::move(r));
  }
  return log;
}

std::vector<Request> read_request_log(std::istream& in,
                                      std::string filename) {
  // Sniff the magic without consuming text input.
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  const auto got = in.gcount();
  if (got == static_cast<std::streamsize>(sizeof magic) &&
      std::memcmp(magic, kMagic, sizeof magic) == 0) {
    in.clear();
    in.seekg(0);
    return read_binary_request_log(in);
  }
  in.clear();
  in.seekg(0);
  return parse_request_log(in, std::move(filename));
}

}  // namespace pfr::serve
