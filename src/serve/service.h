/// \file service.h
/// \brief ReweightService: an online reweighting front-end over
/// pfair::Engine -- one drained request batch per slot, admission control,
/// deferral, and exact request-to-enactment latency accounting.
///
/// The service owns the engine, a RequestQueue producers feed, and an
/// AdmissionController.  run_slot() is the consumer side of the pipeline:
///
///   1. drain the slot-t batch (blocks on producer watermarks, so the batch
///      is thread-count independent);
///   2. respond to shed requests (deadline passed in queue, or evicted by
///      try_push overflow) with Decision::kShed + a kRequestShed event;
///   3. merge service-held deferred requests with the batch (id order) and
///      run each through admission; apply accepted decisions to the engine
///      (join / request_weight_change / request_leave), trace
///      kRequestAdmit / kRequestReject, count predicted-OI admits so
///      hybrid-budget forecasts see intra-slot usage;
///   4. step the engine one slot;
///   5. resolve exact enactment slots: any response whose task's
///      enactment_count advanced during the step enacted *this* slot.
///
/// Every request gets exactly one terminal Response (accepted / clamped /
/// rejected / shed), preceded by at most one kDeferred response the first
/// time it is postponed.  All tracing and metrics happen on the consumer
/// thread -- sinks need no locking.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "pfair/engine.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace pfr::serve {

struct ServiceConfig {
  pfair::EngineConfig engine;
  std::size_t queue_capacity{1024};
  /// Retry window for deferred requests, in slots past the due slot.
  pfair::Slot max_defer{16};
};

class ReweightService {
 public:
  explicit ReweightService(ServiceConfig cfg);

  /// Adds a task to the engine and the service's name table outside the
  /// request path (initial task set, before serving starts).  Throws
  /// std::invalid_argument on a duplicate name.
  pfair::TaskId seed_task(const std::string& name, const Rational& weight,
                          int rank = 0);

  /// The queue producer threads feed.  Register producers before draining.
  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }
  [[nodiscard]] pfair::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const pfair::Engine& engine() const noexcept {
    return engine_;
  }

  /// Attaches a sink to both the engine and the service's own tracer.
  void set_event_sink(obs::EventSink* sink) noexcept {
    engine_.set_event_sink(sink);
    tracer_.set_sink(sink);
  }
  /// Attaches a registry for service metrics (serve.* counters, queue-depth
  /// gauge, latency histogram) plus the engine's phase timers.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a live telemetry shard (nullptr detaches): the engine
  /// publishes its per-slot deltas into it, and the service adds the
  /// serve-side counters (admitted/clamped/rejected/shed/deferred), the
  /// queue-depth gauge, and the enactment-latency histogram.  Caller keeps
  /// ownership.  Pure observer: response digests are identical on or off.
  void set_telemetry(obs::TelemetryShard* shard) noexcept {
    telemetry_ = shard;
    tel_prev_stats_ = stats_;
    engine_.set_telemetry(shard);
  }

  /// Attaches an online SLO tracker (nullptr detaches): advanced once per
  /// run_slot(), fed every terminal decision and resolved enactment, and
  /// given the engine's mean |drift| each slot.  Caller keeps ownership
  /// and reads it via SloTracker::read().
  void set_slo(obs::SloTracker* slo) noexcept { slo_ = slo; }

  /// Drains and serves one slot batch, then advances the engine one slot.
  /// Returns false once the queue reports no further work (all producers
  /// done and drained) AND no deferred requests remain.
  bool run_slot();

  /// Serves slots until the queue closes and deferrals settle, then keeps
  /// stepping (no requests) until every pending enactment resolves, bounded
  /// by `grace` extra slots.
  void run_to_completion(pfair::Slot grace = 4096);

  /// All responses issued so far, in issue order.  A request that was
  /// deferred appears twice: once as kDeferred, once terminally.
  [[nodiscard]] const std::vector<Response>& responses() const noexcept {
    return responses_;
  }
  /// name -> engine TaskId for every task the service created or serves.
  [[nodiscard]] const std::map<std::string, pfair::TaskId>& ids()
      const noexcept {
    return ids_;
  }

  /// Order-sensitive FNV-1a digest over every response's semantic fields
  /// (id, kind, decision, granted, enact_slot, slot).  Equal digests across
  /// producer-thread counts are the determinism acceptance check.
  [[nodiscard]] std::uint64_t response_digest() const noexcept;

  struct ServiceStats {
    std::uint64_t admitted{0};
    std::uint64_t clamped{0};
    std::uint64_t rejected{0};
    std::uint64_t deferred{0};   ///< kDeferred responses issued
    std::uint64_t shed{0};
    std::uint64_t batches{0};
  };
  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }

 private:
  void respond_shed(const Request& r, pfair::Slot t, const char* why);
  /// Runs one request through admission and, on success, the engine.
  /// Returns true if the request is finished (any terminal decision),
  /// false if it must be retried next slot.
  bool serve_one(const Request& r, pfair::Slot t, int& oi_used);
  void record_response(const Response& resp);
  void resolve_enactments(pfair::Slot t);
  void publish_telemetry();

  ServiceConfig cfg_;
  pfair::Engine engine_;
  RequestQueue queue_;
  AdmissionController admission_;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_{nullptr};
  obs::Histogram* latency_hist_{nullptr};
  obs::TelemetryShard* telemetry_{nullptr};
  obs::SloTracker* slo_{nullptr};
  /// Stats as of the last telemetry publish (per-slot deltas).
  ServiceStats tel_prev_stats_;

  std::map<std::string, pfair::TaskId> ids_;
  std::vector<Response> responses_;
  std::vector<Request> deferred_;
  /// Requests already sent a kDeferred response (so they get only one).
  std::vector<RequestId> deferred_notified_;

  struct PendingEnactment {
    std::size_t response_index;
    pfair::TaskId task;
    int count_at_apply;
  };
  std::vector<PendingEnactment> unresolved_;

  ServiceStats stats_;
};

}  // namespace pfr::serve
