/// \file workload.h
/// \brief Turns a Whisper scenario into a scheduler workload: initial task
/// weights plus a trace of weight-change initiations.
///
/// One task per speaker/microphone pair (assumption 5 of Sec. 5).  A task
/// initiates a weight change when its pair's distance has moved >= 5 cm
/// since the last change (assumption 6) or when its occlusion state flips
/// (occlusion events are the big, order-of-magnitude changes).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pfair/engine.h"
#include "whisper/cost_model.h"
#include "whisper/scenario.h"

namespace pfr::whisper {

struct WorkloadConfig {
  ScenarioConfig scenario;
  CostModelConfig cost;
  /// Initiate a reweight only after the pair distance changed this much (m).
  double reweight_distance_threshold{0.05};
};

/// One task's weight trajectory.
struct TaskTrace {
  int speaker{0};
  int microphone{0};
  Rational initial_weight;
  std::vector<std::pair<pfair::Slot, Rational>> events;  ///< initiations
};

struct Workload {
  std::vector<TaskTrace> tasks;
  std::int64_t total_events{0};
};

/// Samples the scenario over [0, slots) and produces the event trace.
[[nodiscard]] Workload generate_workload(const WorkloadConfig& cfg,
                                         std::uint64_t seed,
                                         std::uint64_t run_index,
                                         pfair::Slot slots);

/// Installs the workload into an engine: adds one task per pair at slot 0
/// and queues every initiation.  Returns the created task ids (parallel to
/// workload.tasks).
std::vector<pfair::TaskId> install_workload(pfair::Engine& engine,
                                            const Workload& workload);

}  // namespace pfr::whisper
