#include "whisper/workload.h"

#include <cmath>
#include <string>

namespace pfr::whisper {

Workload generate_workload(const WorkloadConfig& cfg, std::uint64_t seed,
                           std::uint64_t run_index, pfair::Slot slots) {
  Xoshiro256 rng = Xoshiro256::for_stream(seed, run_index);
  const Scenario scenario{cfg.scenario, rng};

  Workload out;
  for (int s = 0; s < scenario.speaker_count(); ++s) {
    for (int m = 0; m < scenario.microphone_count(); ++m) {
      TaskTrace trace;
      trace.speaker = s;
      trace.microphone = m;

      double ref_distance = scenario.pair_distance(s, m, 0);
      bool ref_occluded = scenario.pair_occluded(s, m, 0);
      Rational current = required_weight(cfg.cost, ref_distance, ref_occluded);
      trace.initial_weight = current;

      for (pfair::Slot t = 1; t < slots; ++t) {
        const double d = scenario.pair_distance(s, m, t);
        const bool occ = scenario.pair_occluded(s, m, t);
        const bool distance_trigger =
            std::fabs(d - ref_distance) >= cfg.reweight_distance_threshold;
        const bool occlusion_trigger = occ != ref_occluded;
        if (!distance_trigger && !occlusion_trigger) continue;
        ref_distance = d;
        ref_occluded = occ;
        const Rational w = required_weight(cfg.cost, d, occ);
        if (w == current) continue;
        current = w;
        trace.events.emplace_back(t, w);
        ++out.total_events;
      }
      out.tasks.push_back(std::move(trace));
    }
  }
  return out;
}

std::vector<pfair::TaskId> install_workload(pfair::Engine& engine,
                                            const Workload& workload) {
  std::vector<pfair::TaskId> ids;
  ids.reserve(workload.tasks.size());
  for (const TaskTrace& trace : workload.tasks) {
    const std::string name = "s" + std::to_string(trace.speaker) + "m" +
                             std::to_string(trace.microphone);
    const pfair::TaskId id = engine.add_task(trace.initial_weight, 0, name);
    for (const auto& [slot, weight] : trace.events) {
      engine.request_weight_change(id, weight, slot);
    }
    ids.push_back(id);
  }
  return ids;
}

}  // namespace pfr::whisper
