#include "whisper/geometry.h"

#include <algorithm>

namespace pfr::whisper {

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) noexcept {
  const Vec2 ab = b - a;
  const double len2 = dot(ab, ab);
  if (len2 == 0.0) return distance(p, a);
  const double t = std::clamp(dot(p - a, ab) / len2, 0.0, 1.0);
  return distance(p, a + t * ab);
}

bool segment_intersects_disc(Vec2 a, Vec2 b, Vec2 c, double r) noexcept {
  return point_segment_distance(c, a, b) <= r;
}

}  // namespace pfr::whisper
