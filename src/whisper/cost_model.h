/// \file cost_model.h
/// \brief Correlation-cost model: speaker-microphone geometry -> task weight.
///
/// Whisper localizes a speaker by correlating the emitted white-noise signal
/// against each microphone's input.  The number of accumulate-and-multiply
/// operations grows with the time-shift search window, which widens with the
/// speaker-microphone distance (longer time of flight, larger prediction
/// uncertainty) and widens sharply under occlusion (the diffracted path
/// invalidates the predictor, forcing a larger search -- the paper notes the
/// distance "is also lengthened when an occlusion is caused by the pole").
///
/// The paper derived each task's weight range by timing the correlation
/// kernel on a 2.7 GHz testbed.  We substitute a parametric model with the
/// same structure (DESIGN.md, substitution table):
///
///   delay_samples(d)  = d / c_sound * f_audio
///   search_window(d)  = slack + 2 * spread * delay_samples(d)
///                       (x occlusion_factor when the line of sight is cut)
///   ops_per_second    = search_window * corr_taps * 2 * f_track
///   weight            = ops_per_second / cpu_ops_per_second, clamped and
///                       quantized to k / weight_denominator
///
/// The accumulate-and-multiply kernel itself is implemented in this module
/// (correlate()) so the overhead benchmark can re-time it on the host, as
/// the authors did on theirs.
#pragma once

#include <cstdint>
#include <span>

#include "rational/rational.h"

namespace pfr::whisper {

/// Parameters of the correlation-cost -> weight mapping.  Defaults are
/// calibrated so that weights span roughly [1/100, 1/3] over the paper's
/// geometry sweeps, matching "weight changes of one order of magnitude" and
/// Whisper's stated 1/3 weight cap.
struct CostModelConfig {
  double speed_of_sound{343.0};        ///< m/s
  double audio_rate{48'000.0};         ///< Hz, correlation sample rate
  double track_rate{1'000.0};          ///< Hz, per-object sampling frequency
  double search_slack_samples{8.0};    ///< base search window
  double search_spread{0.5};           ///< window growth per delay sample
  double occlusion_factor{8.0};        ///< search blow-up when occluded
  int corr_taps{512};                  ///< correlation length
  double cpu_ops_per_second{2.7e9};    ///< the paper's 2.7 GHz testbed
  /// Weight bounds: Whisper tasks stay within (0, 1/3].
  double min_weight{1.0 / 300.0};
  double max_weight{1.0 / 3.0};
  /// All weights are quantized to multiples of 1/weight_denominator so that
  /// exact rational bookkeeping stays in small denominators.
  std::int64_t weight_denominator{2520};
};

/// Accumulate-and-multiply operations per second needed to track one
/// speaker/microphone pair at the given distance and occlusion state.
[[nodiscard]] double correlation_ops_per_second(const CostModelConfig& cfg,
                                                double distance_m,
                                                bool occluded) noexcept;

/// Task weight for the given geometry: ops / cpu rate, clamped to
/// [min_weight, max_weight] and quantized to the configured denominator.
[[nodiscard]] Rational required_weight(const CostModelConfig& cfg,
                                       double distance_m, bool occluded);

/// The basic Whisper computation: one accumulate-and-multiply correlation
/// of `signal` against `reference` at `shifts` candidate offsets.  Returns
/// the best-scoring shift.  Used by the overhead microbenchmark to re-time
/// the kernel on the host CPU (the authors timed it on their testbed).
[[nodiscard]] std::int64_t correlate(std::span<const float> reference,
                                     std::span<const float> signal,
                                     std::int64_t shifts) noexcept;

}  // namespace pfr::whisper
