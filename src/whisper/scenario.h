/// \file scenario.h
/// \brief The simulated Whisper room: geometry and motion model.
///
/// Three speakers revolve at constant angular speed around the central pole,
/// all at the same radius, with uniformly random initial phases (the paper
/// places them "randomly around the pole, at an equal distance from the
/// pole, and each rotating around the pole at the same speed").  Four
/// microphones sit in the room corners.  All simplifying assumptions of
/// Sec. 5 are honored: 2-D motion, constant rate, one task per
/// speaker/microphone pair, omnidirectional transducers.
#pragma once

#include <vector>

#include "pfair/types.h"
#include "util/rng.h"
#include "whisper/geometry.h"

namespace pfr::whisper {

struct ScenarioConfig {
  double room_size{1.0};      ///< meters; the room is a square
  double pole_radius{0.025};  ///< 5 cm pole
  int speakers{3};
  double orbit_radius{0.25};  ///< distance from room center, meters
  double speed{1.0};          ///< linear speed of each speaker, m/s
  double quantum_seconds{1e-3};  ///< 1 ms scheduling quantum
  bool occlusions{true};      ///< false removes the pole (no-occlusion runs)
};

/// Immutable, per-run instantiation of the room (random phases drawn once).
class Scenario {
 public:
  Scenario(const ScenarioConfig& cfg, Xoshiro256& rng);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int speaker_count() const noexcept { return cfg_.speakers; }
  [[nodiscard]] int microphone_count() const noexcept {
    return static_cast<int>(mics_.size());
  }
  [[nodiscard]] Vec2 microphone(int m) const {
    return mics_.at(static_cast<std::size_t>(m));
  }

  /// Speaker position at the start of slot t.
  [[nodiscard]] Vec2 speaker_position(int s, pfair::Slot t) const;

  /// Speaker-to-microphone distance at the start of slot t.
  [[nodiscard]] double pair_distance(int s, int m, pfair::Slot t) const;

  /// True iff the pole occludes the speaker-microphone line of sight at t.
  [[nodiscard]] bool pair_occluded(int s, int m, pfair::Slot t) const;

 private:
  ScenarioConfig cfg_;
  Vec2 center_;
  std::vector<Vec2> mics_;
  std::vector<double> phases_;   ///< initial angle per speaker
  double omega_;                 ///< angular speed, rad per slot
};

}  // namespace pfr::whisper
