#include "whisper/cost_model.h"

#include <algorithm>
#include <cmath>

namespace pfr::whisper {

double correlation_ops_per_second(const CostModelConfig& cfg,
                                  double distance_m, bool occluded) noexcept {
  const double delay_samples =
      distance_m / cfg.speed_of_sound * cfg.audio_rate;
  double window = cfg.search_slack_samples + 2.0 * cfg.search_spread * delay_samples;
  if (occluded) window *= cfg.occlusion_factor;
  // Two ops (multiply + accumulate) per tap per candidate shift, per sample.
  return window * cfg.corr_taps * 2.0 * cfg.track_rate;
}

Rational required_weight(const CostModelConfig& cfg, double distance_m,
                         bool occluded) {
  const double w_raw =
      correlation_ops_per_second(cfg, distance_m, occluded) /
      cfg.cpu_ops_per_second;
  const double w = std::clamp(w_raw, cfg.min_weight, cfg.max_weight);
  const auto num = static_cast<std::int64_t>(
      std::lround(w * static_cast<double>(cfg.weight_denominator)));
  return Rational{std::max<std::int64_t>(num, 1), cfg.weight_denominator};
}

std::int64_t correlate(std::span<const float> reference,
                       std::span<const float> signal,
                       std::int64_t shifts) noexcept {
  const std::size_t taps = reference.size();
  std::int64_t best_shift = 0;
  float best_score = -1.0F;
  for (std::int64_t s = 0; s < shifts; ++s) {
    if (static_cast<std::size_t>(s) + taps > signal.size()) break;
    float acc = 0.0F;
    const float* sig = signal.data() + s;
    for (std::size_t k = 0; k < taps; ++k) acc += reference[k] * sig[k];
    if (acc > best_score) {
      best_score = acc;
      best_shift = s;
    }
  }
  return best_shift;
}

}  // namespace pfr::whisper
