/// \file geometry.h
/// \brief 2-D geometry for the simulated Whisper tracking room.
///
/// The paper's evaluation simulates three speakers revolving around a 5 cm
/// pole at the center of a 1 m x 1 m room with a microphone in each corner
/// (Fig. 10).  Motion is two-dimensional by assumption.  The only geometric
/// predicate the workload needs is "does the speaker-to-microphone segment
/// pass through the pole?" (an occlusion).
#pragma once

#include <cmath>

namespace pfr::whisper {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return Vec2{a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return Vec2{a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept {
    return Vec2{s * v.x, s * v.y};
  }
};

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept {
  return a.x * b.x + a.y * b.y;
}

[[nodiscard]] inline double norm(Vec2 v) noexcept { return std::sqrt(dot(v, v)); }

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept {
  return norm(a - b);
}

/// Distance from point p to the closed segment [a, b].
[[nodiscard]] double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) noexcept;

/// True iff the segment [a, b] intersects the closed disc centered at c with
/// radius r (i.e. the line of sight from a to b is occluded by the pole).
[[nodiscard]] bool segment_intersects_disc(Vec2 a, Vec2 b, Vec2 c,
                                           double r) noexcept;

}  // namespace pfr::whisper
