#include "whisper/scenario.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pfr::whisper {

Scenario::Scenario(const ScenarioConfig& cfg, Xoshiro256& rng) : cfg_(cfg) {
  if (cfg.orbit_radius <= cfg.pole_radius) {
    throw std::invalid_argument("Scenario: speakers inside the pole");
  }
  // The paper sweeps the radius up to 50 cm in a 1 m room: speakers may
  // graze the walls but not pass them.
  if (cfg.orbit_radius > cfg.room_size / 2.0) {
    throw std::invalid_argument("Scenario: speakers outside the room");
  }
  const double s = cfg.room_size;
  center_ = Vec2{s / 2.0, s / 2.0};
  mics_ = {Vec2{0.0, 0.0}, Vec2{s, 0.0}, Vec2{0.0, s}, Vec2{s, s}};
  phases_.reserve(static_cast<std::size_t>(cfg.speakers));
  for (int i = 0; i < cfg.speakers; ++i) {
    phases_.push_back(rng.uniform(0.0, 2.0 * std::numbers::pi));
  }
  // Linear speed v at radius R -> angular speed v/R rad/s -> rad/slot.
  omega_ = cfg.speed / cfg.orbit_radius * cfg.quantum_seconds;
}

Vec2 Scenario::speaker_position(int s, pfair::Slot t) const {
  const double a =
      phases_.at(static_cast<std::size_t>(s)) + omega_ * static_cast<double>(t);
  return center_ + cfg_.orbit_radius * Vec2{std::cos(a), std::sin(a)};
}

double Scenario::pair_distance(int s, int m, pfair::Slot t) const {
  return distance(speaker_position(s, t), microphone(m));
}

bool Scenario::pair_occluded(int s, int m, pfair::Slot t) const {
  if (!cfg_.occlusions) return false;
  return segment_intersects_disc(speaker_position(s, t), microphone(m),
                                 center_, cfg_.pole_radius);
}

}  // namespace pfr::whisper
