/// \file edf.h
/// \brief EDF-based reweighting baselines from the companion papers.
///
/// The paper's introduction and conclusion weigh PD2-OI against two
/// alternatives the same authors developed ([4] partitioned EDF, [7] global
/// EDF): partitioning and global EDF have lower migration/preemption cost,
/// but "under partitioning, fine-grained reweighting is (provably)
/// impossible; under global EDF, it is possible only if deadline misses are
/// permissible."  This module implements both baselines on the same fluid
/// task model so the benchmark harness can demonstrate exactly that
/// tradeoff on the Whisper workload:
///
///   * tasks are fluid streams of unit quanta; quantum k of a task has
///     deadline = the projected time its granted-weight fluid allocation
///     reaches k (implicit deadlines);
///   * **global EDF** enacts weight changes instantaneously (fine-grained)
///     and schedules the M earliest-deadline eligible quanta; deadline
///     misses are recorded (with tardiness) instead of being prevented;
///   * **partitioned EDF** statically assigns tasks to processors
///     (first-fit decreasing by weight) and runs uniprocessor EDF per
///     processor.  A weight increase is granted only up to the processor's
///     spare capacity; optionally the task may *migrate* to a processor
///     with room.  The gap between requested and granted weights integrates
///     into `denied_allocation` -- the generalized drift of footnote 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfair/types.h"
#include "rational/rational.h"

namespace pfr::edf {

using pfair::Slot;
using pfair::TaskId;
using pfair::kNever;

enum class Placement : std::uint8_t {
  kGlobal,       ///< any quantum may run on any processor
  kPartitioned,  ///< tasks pinned to processors (first-fit decreasing)
};

struct EdfConfig {
  int processors{4};
  Placement placement{Placement::kGlobal};
  /// Partitioned only: allow a task whose increase does not fit on its
  /// processor to move to one with room (counted as a migration).
  bool allow_migration{false};
};

/// Fluid-task EDF simulator (see file comment).
class EdfSim {
 public:
  explicit EdfSim(EdfConfig cfg);

  /// Adds a task; all tasks join at time 0 (call before run_until).
  TaskId add_task(Rational weight, std::string name = {});

  /// Requests weight `w` from time `at` on.  Global: granted in full,
  /// immediately.  Partitioned: granted up to capacity (see file comment).
  void request_weight_change(TaskId id, Rational w, Slot at);

  void run_until(Slot horizon);
  [[nodiscard]] Slot now() const noexcept { return now_; }

  struct TaskMetrics {
    std::string name;
    Rational requested_weight;   ///< current wt the application asked for
    Rational granted_weight;     ///< what the scheduler is providing
    std::int64_t completed{0};   ///< quanta executed
    Rational ips_requested;      ///< fluid allocation under requested weights
    Rational ips_granted;        ///< fluid allocation under granted weights
    Rational denied_allocation;  ///< integral of (requested - granted)
    std::int64_t misses{0};      ///< quanta that completed past deadline
    Slot max_tardiness{0};
    int migrations{0};
    int processor{-1};           ///< partitioned: current home (-1 = global)
  };
  [[nodiscard]] const TaskMetrics& metrics(TaskId id) const {
    return tasks_.at(static_cast<std::size_t>(id)).metrics;
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::int64_t total_misses() const noexcept {
    return total_misses_;
  }
  [[nodiscard]] Slot max_tardiness() const noexcept { return max_tardiness_; }
  [[nodiscard]] int total_migrations() const noexcept {
    return total_migrations_;
  }

 private:
  struct Task {
    TaskMetrics metrics;
    Slot deadline{kNever};       ///< deadline of quantum completed+1
    bool counted_miss{false};    ///< current quantum already counted late
  };

  struct WeightEvent {
    Slot at;
    TaskId task;
    Rational weight;
  };

  void partition_initial();
  void enact(Task& t, TaskId id, Rational requested, Slot at);
  void recompute_deadline(Task& t, Slot at);
  [[nodiscard]] Rational processor_load(int proc, TaskId except) const;

  EdfConfig cfg_;
  Slot now_{0};
  bool started_{false};
  std::vector<Task> tasks_;
  std::vector<WeightEvent> events_;
  std::size_t next_event_{0};
  std::int64_t total_misses_{0};
  Slot max_tardiness_{0};
  int total_migrations_{0};
};

}  // namespace pfr::edf
