#include "edf/edf.h"

#include <algorithm>
#include <stdexcept>

namespace pfr::edf {

EdfSim::EdfSim(EdfConfig cfg) : cfg_(cfg) {
  if (cfg.processors < 1) {
    throw std::invalid_argument("EdfSim: processors must be >= 1");
  }
}

TaskId EdfSim::add_task(Rational weight, std::string name) {
  if (started_) {
    throw std::logic_error("EdfSim: add tasks before running");
  }
  if (!(weight > 0) || weight > 1) {
    throw std::invalid_argument("EdfSim: weight outside (0, 1]");
  }
  Task t;
  t.metrics.name =
      name.empty() ? "T" + std::to_string(tasks_.size()) : std::move(name);
  t.metrics.requested_weight = weight;
  t.metrics.granted_weight = weight;
  tasks_.push_back(std::move(t));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void EdfSim::request_weight_change(TaskId id, Rational w, Slot at) {
  if (at < now_) {
    throw std::invalid_argument("EdfSim: weight change in the past");
  }
  if (!(w > 0) || w > 1) {
    throw std::invalid_argument("EdfSim: weight outside (0, 1]");
  }
  events_.push_back(WeightEvent{at, id, w});
}

Rational EdfSim::processor_load(int proc, TaskId except) const {
  Rational load;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (static_cast<TaskId>(i) == except) continue;
    if (tasks_[i].metrics.processor == proc) {
      load += tasks_[i].metrics.granted_weight;
    }
  }
  return load;
}

void EdfSim::partition_initial() {
  // First-fit decreasing by weight -- the standard partitioning heuristic
  // used by the companion paper's evaluation.
  std::vector<std::size_t> order(tasks_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (tasks_[a].metrics.granted_weight != tasks_[b].metrics.granted_weight) {
      return tasks_[b].metrics.granted_weight <
             tasks_[a].metrics.granted_weight;
    }
    return a < b;
  });
  for (const std::size_t i : order) {
    Task& t = tasks_[i];
    bool placed = false;
    for (int p = 0; p < cfg_.processors && !placed; ++p) {
      if (processor_load(p, static_cast<TaskId>(i)) +
              t.metrics.granted_weight <=
          1) {
        t.metrics.processor = p;
        placed = true;
      }
    }
    if (!placed) {
      // Clamp the task to whatever the least-loaded processor can spare.
      int best = 0;
      Rational best_load{2};
      for (int p = 0; p < cfg_.processors; ++p) {
        const Rational load = processor_load(p, static_cast<TaskId>(i));
        if (load < best_load) {
          best_load = load;
          best = p;
        }
      }
      t.metrics.processor = best;
      t.metrics.granted_weight = max(Rational{}, Rational{1} - best_load);
    }
  }
}

void EdfSim::enact(Task& t, TaskId id, Rational requested, Slot at) {
  t.metrics.requested_weight = requested;
  if (cfg_.placement == Placement::kGlobal) {
    t.metrics.granted_weight = requested;  // instantaneous, fine-grained
  } else {
    const int home = t.metrics.processor;
    const Rational spare = Rational{1} - processor_load(home, id);
    if (requested <= spare) {
      t.metrics.granted_weight = requested;
    } else if (cfg_.allow_migration) {
      // Find a processor with room; move there if one exists.
      int target = -1;
      for (int p = 0; p < cfg_.processors; ++p) {
        if (p == home) continue;
        if (processor_load(p, id) + requested <= 1) {
          target = p;
          break;
        }
      }
      if (target >= 0) {
        t.metrics.processor = target;
        ++t.metrics.migrations;
        ++total_migrations_;
        t.metrics.granted_weight = requested;
      } else {
        t.metrics.granted_weight = max(t.metrics.granted_weight, spare);
      }
    } else {
      // [4]: without migration the increase cannot be honored -- grant the
      // spare capacity; the shortfall integrates into denied_allocation.
      t.metrics.granted_weight = max(t.metrics.granted_weight, spare);
    }
  }
  recompute_deadline(t, at);
}

void EdfSim::recompute_deadline(Task& t, Slot at) {
  const Rational owed =
      Rational{t.metrics.completed + 1} - t.metrics.ips_granted;
  if (owed <= 0) {
    t.deadline = at;
    return;
  }
  t.deadline = at + (owed / t.metrics.granted_weight).ceil();
}

void EdfSim::run_until(Slot horizon) {
  if (!started_) {
    started_ = true;
    if (cfg_.placement == Placement::kPartitioned) partition_initial();
    for (Task& t : tasks_) recompute_deadline(t, 0);
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const WeightEvent& a, const WeightEvent& b) { return a.at < b.at; });
  }

  while (now_ < horizon) {
    const Slot t = now_;

    // 1. Weight-change events due at t.
    while (next_event_ < events_.size() && events_[next_event_].at == t) {
      const WeightEvent& ev = events_[next_event_++];
      enact(tasks_.at(static_cast<std::size_t>(ev.task)), ev.task, ev.weight,
            t);
    }

    // 2. EDF dispatch.  A quantum is eligible once the granted fluid
    //    allocation has reached the previous quantum (no running ahead of
    //    the fluid schedule by a full quantum).
    const auto eligible = [this, t](std::size_t i) {
      const Task& task = tasks_[i];
      (void)t;
      return task.metrics.ips_granted >= Rational{task.metrics.completed};
    };
    std::vector<std::size_t> ran;
    const auto run_one = [this, t, &ran](std::size_t i) {
      Task& task = tasks_[i];
      if (task.deadline < t + 1) {
        // Completing past the deadline: a miss with measurable tardiness.
        if (!task.counted_miss) {
          ++task.metrics.misses;
          ++total_misses_;
          task.counted_miss = true;
        }
        const Slot tardiness = t + 1 - task.deadline;
        task.metrics.max_tardiness =
            std::max(task.metrics.max_tardiness, tardiness);
        max_tardiness_ = std::max(max_tardiness_, tardiness);
      }
      ++task.metrics.completed;
      task.counted_miss = false;
      ran.push_back(i);  // deadline recomputed after the slot's accrual
    };

    if (cfg_.placement == Placement::kGlobal) {
      std::vector<std::size_t> ready;
      for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (eligible(i)) ready.push_back(i);
      }
      std::sort(ready.begin(), ready.end(),
                [this](std::size_t a, std::size_t b) {
                  if (tasks_[a].deadline != tasks_[b].deadline) {
                    return tasks_[a].deadline < tasks_[b].deadline;
                  }
                  return a < b;
                });
      const std::size_t picks =
          std::min(ready.size(), static_cast<std::size_t>(cfg_.processors));
      for (std::size_t k = 0; k < picks; ++k) run_one(ready[k]);
    } else {
      for (int p = 0; p < cfg_.processors; ++p) {
        std::size_t best = tasks_.size();
        for (std::size_t i = 0; i < tasks_.size(); ++i) {
          if (tasks_[i].metrics.processor != p || !eligible(i)) continue;
          if (best == tasks_.size() ||
              tasks_[i].deadline < tasks_[best].deadline) {
            best = i;
          }
        }
        if (best < tasks_.size()) run_one(best);
      }
    }

    // 3. Fluid accrual over slot t.
    for (Task& task : tasks_) {
      task.metrics.ips_requested += task.metrics.requested_weight;
      task.metrics.ips_granted += task.metrics.granted_weight;
      task.metrics.denied_allocation +=
          task.metrics.requested_weight - task.metrics.granted_weight;
    }
    for (const std::size_t i : ran) recompute_deadline(tasks_[i], t + 1);

    ++now_;

    // 4. Deadline-miss detection for still-incomplete quanta.
    for (Task& task : tasks_) {
      if (!task.counted_miss && task.deadline <= now_ &&
          Rational{task.metrics.completed} < task.metrics.ips_granted) {
        ++task.metrics.misses;
        ++total_misses_;
        task.counted_miss = true;
      }
    }
  }
}

}  // namespace pfr::edf
