#!/usr/bin/env python3
"""Perf-regression gate for the quick bench runs in CI.

Compares the JSON emitted by `dispatch_micro --quick` and
`cluster_scaling --quick` against a checked-in baseline
(results/perf_baseline.json).  CI runners are noisy and share cores, so
the band is deliberately generous: the job fails only on a collapse
(throughput below ``min_throughput_fraction`` of baseline, or latency
above ``max_latency_multiple`` of baseline), not on ordinary jitter.
Correctness invariants carried in the bench JSON (digest agreement,
misses, verifier violations) are enforced exactly.

Usage:
  check_perf_baseline.py --baseline results/perf_baseline.json \
      --dispatch results/BENCH_dispatch_micro.json \
      --cluster results/BENCH_cluster_scaling.json
  check_perf_baseline.py --write ...   # regenerate the baseline instead
"""

import argparse
import json
import sys

# Fail only below 30% of baseline throughput / above 3.3x baseline
# latency.  A real regression from an accidental O(n^2) or a lock on the
# hot path is 5-100x, which this still catches; runner noise is ~2x.
DEFAULT_MIN_THROUGHPUT_FRACTION = 0.30
DEFAULT_MAX_LATENCY_MULTIPLE = 3.3

BASELINE_SCHEMA = 1


def extract_metrics(dispatch, cluster):
    """Flatten the two bench JSONs into {metric_name: (kind, value)}.

    kind is "throughput" (higher is better) or "latency" (lower is
    better).  Metric names are stable across runs so the baseline can be
    diffed by hand.
    """
    metrics = {}
    for scenario in dispatch.get("scenarios", []):
        for mode, stats in scenario.get("modes", {}).items():
            key = f"dispatch_micro/{scenario['name']}/{mode}/dispatch_ns_per_slot"
            metrics[key] = ("latency", stats["dispatch_ns_per_slot"])
    for row in cluster.get("results", []):
        key = f"cluster_scaling/K{row['shards']}/slots_per_s"
        metrics[key] = ("throughput", row["slots_per_s"])
    return metrics


def check_invariants(dispatch, cluster):
    """Exact correctness gates carried in the bench output."""
    errors = []
    for scenario in dispatch.get("scenarios", []):
        if not scenario.get("digests_match", True):
            errors.append(f"dispatch_micro/{scenario['name']}: digests differ across modes")
        for mode, stats in scenario.get("modes", {}).items():
            if stats.get("misses", 0) != 0:
                errors.append(
                    f"dispatch_micro/{scenario['name']}/{mode}: {stats['misses']} deadline misses")
    for row in cluster.get("results", []):
        tag = f"cluster_scaling/K{row['shards']}"
        if not row.get("digest_match_across_threads", True):
            errors.append(f"{tag}: digest differs across worker-thread counts")
        if row.get("misses", 0) != 0:
            errors.append(f"{tag}: {row['misses']} deadline misses")
        if row.get("violations", 0) != 0:
            errors.append(f"{tag}: {row['violations']} verifier violations")
    tel = cluster.get("telemetry")
    if tel is not None:
        if not tel.get("digest_match", True):
            errors.append("cluster_scaling/telemetry: digest changed with telemetry attached")
        # Overhead is report-only under --quick (too few slots to be
        # stable on a shared runner); the full run enforces the <3% bound.
        print(f"telemetry overhead at K={tel.get('shards')}: "
              f"{tel.get('overhead_pct', 0.0):+.2f}% (report-only), "
              f"torn snapshots: {tel.get('torn_snapshots', 0)}")
    return errors


def compare(baseline, metrics):
    frac = baseline.get("tolerance", {}).get(
        "min_throughput_fraction", DEFAULT_MIN_THROUGHPUT_FRACTION)
    mult = baseline.get("tolerance", {}).get(
        "max_latency_multiple", DEFAULT_MAX_LATENCY_MULTIPLE)
    failures = []
    for name, entry in sorted(baseline.get("metrics", {}).items()):
        kind, base_value = entry["kind"], entry["value"]
        if name not in metrics:
            failures.append(f"{name}: present in baseline but missing from this run")
            continue
        cur_kind, value = metrics[name]
        if cur_kind != kind:
            failures.append(f"{name}: kind changed {kind} -> {cur_kind}")
            continue
        if kind == "throughput":
            floor = base_value * frac
            verdict = "FAIL" if value < floor else "ok"
            print(f"[{verdict}] {name}: {value:.1f} vs baseline {base_value:.1f} "
                  f"(floor {floor:.1f})")
            if value < floor:
                failures.append(f"{name}: {value:.1f} < {floor:.1f} "
                                f"({frac:.0%} of baseline {base_value:.1f})")
        else:
            ceiling = base_value * mult
            verdict = "FAIL" if value > ceiling else "ok"
            print(f"[{verdict}] {name}: {value:.1f} vs baseline {base_value:.1f} "
                  f"(ceiling {ceiling:.1f})")
            if value > ceiling:
                failures.append(f"{name}: {value:.1f} > {ceiling:.1f} "
                                f"({mult:.1f}x baseline {base_value:.1f})")
    for name in sorted(set(metrics) - set(baseline.get("metrics", {}))):
        print(f"[new ] {name}: {metrics[name][1]:.1f} (not in baseline; add with --write)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--dispatch", required=True,
                    help="JSON from dispatch_micro --quick")
    ap.add_argument("--cluster", required=True,
                    help="JSON from cluster_scaling --quick")
    ap.add_argument("--write", action="store_true",
                    help="regenerate the baseline from this run instead of checking")
    args = ap.parse_args()

    with open(args.dispatch) as f:
        dispatch = json.load(f)
    with open(args.cluster) as f:
        cluster = json.load(f)

    metrics = extract_metrics(dispatch, cluster)
    errors = check_invariants(dispatch, cluster)

    if args.write:
        baseline = {
            "schema": BASELINE_SCHEMA,
            "note": "quick-run perf baseline; regenerate with scripts/check_perf_baseline.py --write",
            "tolerance": {
                "min_throughput_fraction": DEFAULT_MIN_THROUGHPUT_FRACTION,
                "max_latency_multiple": DEFAULT_MAX_LATENCY_MULTIPLE,
            },
            "metrics": {name: {"kind": kind, "value": value}
                        for name, (kind, value) in sorted(metrics.items())},
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"wrote {len(metrics)} metrics to {args.baseline}")
    else:
        with open(args.baseline) as f:
            baseline = json.load(f)
        if baseline.get("schema") != BASELINE_SCHEMA:
            sys.exit(f"baseline schema {baseline.get('schema')} != {BASELINE_SCHEMA}; "
                     "regenerate with --write")
        errors += compare(baseline, metrics)

    if errors:
        print("\nperf baseline check FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        sys.exit(1)
    print("perf baseline check passed" if not args.write else "baseline written")


if __name__ == "__main__":
    main()
